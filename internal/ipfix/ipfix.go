// Package ipfix implements the subset of the IPFIX protocol (RFC 7011)
// that an IXP-style flow pipeline needs: template records, data records,
// message framing, a file reader/writer (concatenated messages, as in
// RFC 5655 files), and a UDP exporter/collector pair.
//
// The flow schema mirrors the paper's vantage point: IP and transport
// headers plus packet/byte counts from 1-in-N packet sampling, and the
// ingress/egress IXP member ports the flow crossed.
package ipfix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"spoofscope/internal/netx"
)

// Standard information element IDs used by this package (IANA registry).
const (
	IEOctetDeltaCount       = 1   // uint64
	IEPacketDeltaCount      = 2   // uint64
	IEProtocolIdentifier    = 4   // uint8
	IETCPControlBits        = 6   // uint8
	IESourceTransportPort   = 7   // uint16
	IESourceIPv4Address     = 8   // 4 bytes
	IEIngressInterface      = 10  // uint32
	IEDestTransportPort     = 11  // uint16
	IEDestIPv4Address       = 12  // 4 bytes
	IEEgressInterface       = 14  // uint32
	IEFlowStartMilliseconds = 152 // uint64, ms since epoch
)

// ieLengths maps supported IEs to their fixed field lengths.
var ieLengths = map[uint16]uint16{
	IEOctetDeltaCount:       8,
	IEPacketDeltaCount:      8,
	IEProtocolIdentifier:    1,
	IETCPControlBits:        1,
	IESourceTransportPort:   2,
	IESourceIPv4Address:     4,
	IEIngressInterface:      4,
	IEDestTransportPort:     2,
	IEDestIPv4Address:       4,
	IEEgressInterface:       4,
	IEFlowStartMilliseconds: 8,
}

// FlowTemplateID is the template ID this package's encoder uses.
const FlowTemplateID = 256

// flowTemplateFields is the canonical field order of the encoder's template.
var flowTemplateFields = []uint16{
	IEFlowStartMilliseconds,
	IESourceIPv4Address,
	IEDestIPv4Address,
	IESourceTransportPort,
	IEDestTransportPort,
	IEProtocolIdentifier,
	IETCPControlBits,
	IEPacketDeltaCount,
	IEOctetDeltaCount,
	IEIngressInterface,
	IEEgressInterface,
}

// Flow is one flow record: the unit the classifier consumes. Packets and
// Bytes are the *sampled* counts (multiply by the sampling rate to
// extrapolate).
type Flow struct {
	Start    time.Time
	SrcAddr  netx.Addr
	DstAddr  netx.Addr
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8
	TCPFlags uint8
	Packets  uint64
	Bytes    uint64
	// Ingress and Egress are IXP switch-port IDs; the scenario's member
	// table maps them to member ASes.
	Ingress uint32
	Egress  uint32
}

// Common protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

const (
	msgHeaderLen = 16
	setHeaderLen = 4
	version      = 10
)

// flowRecordLen is the encoded size of one Flow under the canonical template.
var flowRecordLen = func() int {
	n := 0
	for _, ie := range flowTemplateFields {
		n += int(ieLengths[ie])
	}
	return n
}()

// Encoder serializes flows into IPFIX messages. It is not safe for
// concurrent use.
type Encoder struct {
	domain       uint32
	seq          uint32
	sentTemplate bool
	// MaxRecordsPerMessage bounds message size; 50 records ≈ 2.3 KB,
	// comfortably under a 1500-byte-safe limit would be 25. Default 25.
	MaxRecordsPerMessage int
}

// NewEncoder returns an encoder for the given observation domain.
func NewEncoder(domain uint32) *Encoder {
	return &Encoder{domain: domain, MaxRecordsPerMessage: 25}
}

func (e *Encoder) header(b []byte, length int, exportTime time.Time) {
	binary.BigEndian.PutUint16(b[0:], version)
	binary.BigEndian.PutUint16(b[2:], uint16(length))
	binary.BigEndian.PutUint32(b[4:], uint32(exportTime.Unix()))
	binary.BigEndian.PutUint32(b[8:], e.seq)
	binary.BigEndian.PutUint32(b[12:], e.domain)
}

// TemplateMessage returns an IPFIX message carrying the flow template.
// Encoders emit it automatically at the start of a stream; collectors that
// join mid-stream (UDP) need it re-sent periodically.
func (e *Encoder) TemplateMessage(exportTime time.Time) []byte {
	setLen := setHeaderLen + 4 + 4*len(flowTemplateFields)
	total := msgHeaderLen + setLen
	b := make([]byte, total)
	e.header(b, total, exportTime)
	p := b[msgHeaderLen:]
	binary.BigEndian.PutUint16(p[0:], 2) // template set
	binary.BigEndian.PutUint16(p[2:], uint16(setLen))
	binary.BigEndian.PutUint16(p[4:], FlowTemplateID)
	binary.BigEndian.PutUint16(p[6:], uint16(len(flowTemplateFields)))
	off := 8
	for _, ie := range flowTemplateFields {
		binary.BigEndian.PutUint16(p[off:], ie)
		binary.BigEndian.PutUint16(p[off+2:], ieLengths[ie])
		off += 4
	}
	e.sentTemplate = true
	return b
}

// Encode serializes flows into one or more IPFIX messages (the first call
// also emits the template message). The export time stamps the messages.
func (e *Encoder) Encode(exportTime time.Time, flows []Flow) [][]byte {
	var msgs [][]byte
	if !e.sentTemplate {
		msgs = append(msgs, e.TemplateMessage(exportTime))
	}
	for len(flows) > 0 {
		n := len(flows)
		if n > e.MaxRecordsPerMessage {
			n = e.MaxRecordsPerMessage
		}
		batch := flows[:n]
		flows = flows[n:]
		setLen := setHeaderLen + n*flowRecordLen
		total := msgHeaderLen + setLen
		b := make([]byte, total)
		e.header(b, total, exportTime)
		p := b[msgHeaderLen:]
		binary.BigEndian.PutUint16(p[0:], FlowTemplateID)
		binary.BigEndian.PutUint16(p[2:], uint16(setLen))
		off := setHeaderLen
		for _, f := range batch {
			off += encodeFlow(p[off:], &f)
		}
		e.seq += uint32(n)
		msgs = append(msgs, b)
	}
	return msgs
}

func encodeFlow(b []byte, f *Flow) int {
	off := 0
	binary.BigEndian.PutUint64(b[off:], uint64(f.Start.UnixMilli()))
	off += 8
	binary.BigEndian.PutUint32(b[off:], uint32(f.SrcAddr))
	off += 4
	binary.BigEndian.PutUint32(b[off:], uint32(f.DstAddr))
	off += 4
	binary.BigEndian.PutUint16(b[off:], f.SrcPort)
	off += 2
	binary.BigEndian.PutUint16(b[off:], f.DstPort)
	off += 2
	b[off] = f.Protocol
	off++
	b[off] = f.TCPFlags
	off++
	binary.BigEndian.PutUint64(b[off:], f.Packets)
	off += 8
	binary.BigEndian.PutUint64(b[off:], f.Bytes)
	off += 8
	binary.BigEndian.PutUint32(b[off:], f.Ingress)
	off += 4
	binary.BigEndian.PutUint32(b[off:], f.Egress)
	off += 4
	return off
}

// template describes a received template: field IDs and lengths in order.
type template struct {
	fields []templateField
	size   int
}

type templateField struct {
	id     uint16
	length uint16
}

// Decoder parses IPFIX messages. It keeps per-domain template state and
// tolerates templates other than the canonical one, decoding any record
// that carries the IEs it knows and skipping fields it does not.
type Decoder struct {
	templates map[uint64]*template // (domain << 16 | templateID)
	// Stats
	Messages        int
	RecordsDecoded  int
	RecordsSkipped  int // data sets with unknown template
	UnknownSetsSeen int
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder {
	return &Decoder{templates: make(map[uint64]*template)}
}

func tkey(domain uint32, id uint16) uint64 { return uint64(domain)<<16 | uint64(id) }

// Decode parses one IPFIX message and appends decoded flows to dst,
// returning the extended slice.
func (d *Decoder) Decode(msg []byte, dst []Flow) ([]Flow, error) {
	if len(msg) < msgHeaderLen {
		return dst, errors.New("ipfix: truncated message header")
	}
	if v := binary.BigEndian.Uint16(msg); v != version {
		return dst, fmt.Errorf("ipfix: unsupported version %d", v)
	}
	total := int(binary.BigEndian.Uint16(msg[2:]))
	if total != len(msg) {
		return dst, fmt.Errorf("ipfix: length mismatch: header %d, have %d", total, len(msg))
	}
	domain := binary.BigEndian.Uint32(msg[12:])
	d.Messages++
	p := msg[msgHeaderLen:]
	for len(p) > 0 {
		if len(p) < setHeaderLen {
			return dst, errors.New("ipfix: truncated set header")
		}
		setID := binary.BigEndian.Uint16(p)
		setLen := int(binary.BigEndian.Uint16(p[2:]))
		if setLen < setHeaderLen || setLen > len(p) {
			return dst, fmt.Errorf("ipfix: bad set length %d", setLen)
		}
		body := p[setHeaderLen:setLen]
		switch {
		case setID == 2:
			if err := d.parseTemplates(domain, body); err != nil {
				return dst, err
			}
		case setID >= 256:
			var err error
			dst, err = d.parseData(domain, setID, body, dst)
			if err != nil {
				return dst, err
			}
		default:
			d.UnknownSetsSeen++
		}
		p = p[setLen:]
	}
	return dst, nil
}

// AppendFlows is the batch-decode entry point the ingest path builds on: it
// parses one IPFIX message and appends every decoded flow to dst, returning
// the extended slice. It is Decode under the name the collectors use — once
// dst has grown to the feed's steady-state message size a call allocates
// nothing: template state lives in the decoder and records land directly in
// the caller-owned batch, which can be handed to the classifier (or an
// IngestQueue's PushBatch) without a per-flow copy.
func (d *Decoder) AppendFlows(msg []byte, dst []Flow) ([]Flow, error) {
	return d.Decode(msg, dst)
}

func (d *Decoder) parseTemplates(domain uint32, b []byte) error {
	for len(b) >= 4 {
		id := binary.BigEndian.Uint16(b)
		count := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		if len(b) < 4*count {
			return errors.New("ipfix: truncated template record")
		}
		// RFC 7011 exporters re-announce templates periodically; a refresh
		// identical to the registered template (the overwhelmingly common
		// case) must not rebuild it — long-running streams would otherwise
		// allocate on every refresh interval.
		if old, ok := d.templates[tkey(domain, id)]; ok && len(old.fields) == count {
			same := true
			for i := 0; i < count; i++ {
				f := templateField{
					id:     binary.BigEndian.Uint16(b[4*i:]),
					length: binary.BigEndian.Uint16(b[4*i+2:]),
				}
				if old.fields[i] != f {
					same = false
					break
				}
			}
			if same {
				b = b[4*count:]
				continue
			}
		}
		t := &template{}
		for i := 0; i < count; i++ {
			ie := binary.BigEndian.Uint16(b[4*i:])
			if ie&0x8000 != 0 {
				return errors.New("ipfix: enterprise IEs unsupported")
			}
			l := binary.BigEndian.Uint16(b[4*i+2:])
			if l == 0xffff {
				return errors.New("ipfix: variable-length IEs unsupported")
			}
			t.fields = append(t.fields, templateField{id: ie, length: l})
			t.size += int(l)
		}
		b = b[4*count:]
		if t.size == 0 {
			return errors.New("ipfix: empty template")
		}
		d.templates[tkey(domain, id)] = t
	}
	return nil
}

func (d *Decoder) parseData(domain uint32, setID uint16, b []byte, dst []Flow) ([]Flow, error) {
	t, ok := d.templates[tkey(domain, setID)]
	if !ok {
		d.RecordsSkipped++
		return dst, nil // RFC 7011: buffer or drop; we drop
	}
	for len(b) >= t.size {
		var f Flow
		off := 0
		for _, fld := range t.fields {
			v := b[off : off+int(fld.length)]
			// A known IE advertised at a non-canonical length (reduced-size
			// or hostile encoding) is skipped like an unknown one rather
			// than fed to a fixed-width parse below.
			if fld.length != ieLengths[fld.id] {
				off += int(fld.length)
				continue
			}
			switch fld.id {
			case IEFlowStartMilliseconds:
				f.Start = time.UnixMilli(int64(binary.BigEndian.Uint64(v))).UTC()
			case IESourceIPv4Address:
				f.SrcAddr = netx.Addr(binary.BigEndian.Uint32(v))
			case IEDestIPv4Address:
				f.DstAddr = netx.Addr(binary.BigEndian.Uint32(v))
			case IESourceTransportPort:
				f.SrcPort = binary.BigEndian.Uint16(v)
			case IEDestTransportPort:
				f.DstPort = binary.BigEndian.Uint16(v)
			case IEProtocolIdentifier:
				f.Protocol = v[0]
			case IETCPControlBits:
				f.TCPFlags = v[0]
			case IEPacketDeltaCount:
				f.Packets = binary.BigEndian.Uint64(v)
			case IEOctetDeltaCount:
				f.Bytes = binary.BigEndian.Uint64(v)
			case IEIngressInterface:
				f.Ingress = binary.BigEndian.Uint32(v)
			case IEEgressInterface:
				f.Egress = binary.BigEndian.Uint32(v)
			default:
				// Unknown IE: skipped by length.
			}
			off += int(fld.length)
		}
		dst = append(dst, f)
		d.RecordsDecoded++
		b = b[t.size:]
	}
	// Remaining bytes < record size are padding (RFC 7011 §3.3.1).
	return dst, nil
}
