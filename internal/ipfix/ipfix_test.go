package ipfix

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"spoofscope/internal/netx"
)

var t0 = time.Unix(1486252800, 0).UTC()

func sampleFlow(i int) Flow {
	return Flow{
		Start:    t0.Add(time.Duration(i) * time.Second),
		SrcAddr:  netx.MustParseAddr("203.0.113.7"),
		DstAddr:  netx.MustParseAddr("198.51.100.9"),
		SrcPort:  uint16(40000 + i),
		DstPort:  80,
		Protocol: ProtoTCP,
		TCPFlags: 0x02, // SYN
		Packets:  uint64(1 + i),
		Bytes:    uint64(60 * (1 + i)),
		Ingress:  12,
		Egress:   30,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	enc := NewEncoder(7)
	flows := make([]Flow, 10)
	for i := range flows {
		flows[i] = sampleFlow(i)
	}
	msgs := enc.Encode(t0, flows)
	if len(msgs) < 2 {
		t.Fatalf("expected template + data messages, got %d", len(msgs))
	}
	dec := NewDecoder()
	var got []Flow
	for _, m := range msgs {
		var err error
		got, err = dec.Decode(m, got)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(flows, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", flows[0], got[0])
	}
	if dec.RecordsDecoded != len(flows) {
		t.Fatalf("RecordsDecoded = %d", dec.RecordsDecoded)
	}
}

func TestEncodeSplitsLargeBatches(t *testing.T) {
	enc := NewEncoder(1)
	enc.MaxRecordsPerMessage = 3
	flows := make([]Flow, 10)
	for i := range flows {
		flows[i] = sampleFlow(i)
	}
	msgs := enc.Encode(t0, flows)
	// 1 template + ceil(10/3) = 4 data messages.
	if len(msgs) != 5 {
		t.Fatalf("messages = %d", len(msgs))
	}
	for _, m := range msgs {
		if len(m) != int(binary.BigEndian.Uint16(m[2:])) {
			t.Fatal("message length field wrong")
		}
	}
}

func TestSequenceNumbersCountDataRecords(t *testing.T) {
	enc := NewEncoder(1)
	enc.Encode(t0, []Flow{sampleFlow(0), sampleFlow(1)})
	msgs := enc.Encode(t0, []Flow{sampleFlow(2)})
	// Sequence of the follow-up message must be 2 (records sent so far).
	seq := binary.BigEndian.Uint32(msgs[0][8:])
	if seq != 2 {
		t.Fatalf("sequence = %d, want 2", seq)
	}
}

func TestDecodeWithoutTemplateSkips(t *testing.T) {
	enc := NewEncoder(1)
	msgs := enc.Encode(t0, []Flow{sampleFlow(0)})
	dec := NewDecoder()
	// Feed only the data message (index 1), not the template.
	got, err := dec.Decode(msgs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || dec.RecordsSkipped != 1 {
		t.Fatalf("flows=%d skipped=%d", len(got), dec.RecordsSkipped)
	}
}

func TestDecodePerDomainTemplates(t *testing.T) {
	encA, encB := NewEncoder(1), NewEncoder(2)
	msgsA := encA.Encode(t0, []Flow{sampleFlow(0)})
	msgsB := encB.Encode(t0, []Flow{sampleFlow(1)})
	dec := NewDecoder()
	var got []Flow
	var err error
	// Template from domain 1 must not satisfy data from domain 2.
	got, err = dec.Decode(msgsA[0], got) // template A
	if err != nil {
		t.Fatal(err)
	}
	got, err = dec.Decode(msgsB[1], got) // data B without template B
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("cross-domain template leak")
	}
	got, err = dec.Decode(msgsB[0], got)
	if err != nil {
		t.Fatal(err)
	}
	got, err = dec.Decode(msgsB[1], got)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("flows = %d", len(got))
	}
}

func TestDecodeForeignTemplateSubset(t *testing.T) {
	// A hand-built template with a different field order and an unknown IE:
	// the decoder must still extract what it knows.
	var msg []byte
	// Header placeholder.
	msg = append(msg, make([]byte, msgHeaderLen)...)
	// Template set: ID 300, 3 fields: srcIP(4), unknown IE 999 (2 bytes),
	// dstPort(2).
	tmpl := []byte{
		0, 2, 0, 20, // set 2, length 20
		1, 44, 0, 3, // template 300, field count 3
		0, 8, 0, 4, // sourceIPv4Address
		3, 231, 0, 2, // IE 999, len 2
		0, 11, 0, 2, // destinationTransportPort
	}
	msg = append(msg, tmpl...)
	// Data set: one record.
	data := []byte{
		1, 44, 0, 12, // set 300, length 4+8
		203, 0, 113, 9, // srcIP
		0xde, 0xad, // unknown
		0, 53, // dst port 53
	}
	msg = append(msg, data...)
	binary.BigEndian.PutUint16(msg[0:], version)
	binary.BigEndian.PutUint16(msg[2:], uint16(len(msg)))
	binary.BigEndian.PutUint32(msg[12:], 9)

	dec := NewDecoder()
	got, err := dec.Decode(msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("flows = %d", len(got))
	}
	if got[0].SrcAddr != netx.MustParseAddr("203.0.113.9") || got[0].DstPort != 53 {
		t.Fatalf("decoded %+v", got[0])
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	enc := NewEncoder(1)
	msgs := enc.Encode(t0, []Flow{sampleFlow(0)})
	good := msgs[1]
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"short", func(b []byte) []byte { return b[:8] }},
		{"bad version", func(b []byte) []byte { b[0] = 0; b[1] = 9; return b }},
		{"length mismatch", func(b []byte) []byte { b[3]++; return b }},
		{"bad set length", func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[msgHeaderLen+2:], 2)
			return b
		}},
	} {
		bb := append([]byte(nil), good...)
		if _, err := NewDecoder().Decode(tc.mut(bb), nil); err == nil {
			t.Errorf("%s: corrupt message accepted", tc.name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf, 42)
	rng := rand.New(rand.NewSource(8))
	var want []Flow
	for batch := 0; batch < 5; batch++ {
		flows := make([]Flow, rng.Intn(40)+1)
		for i := range flows {
			flows[i] = Flow{
				Start:    t0.Add(time.Duration(rng.Intn(86400)) * time.Second),
				SrcAddr:  netx.Addr(rng.Uint32()),
				DstAddr:  netx.Addr(rng.Uint32()),
				SrcPort:  uint16(rng.Intn(65536)),
				DstPort:  uint16(rng.Intn(65536)),
				Protocol: uint8(rng.Intn(256)),
				TCPFlags: uint8(rng.Intn(256)),
				Packets:  rng.Uint64() % 1e6,
				Bytes:    rng.Uint64() % 1e9,
				Ingress:  rng.Uint32() % 1000,
				Egress:   rng.Uint32() % 1000,
			}
		}
		want = append(want, flows...)
		if err := fw.Write(t0, flows); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	fr := NewFileReader(bytes.NewReader(buf.Bytes()))
	var got []Flow
	if err := fr.ForEach(func(f Flow) bool { got = append(got, f); return true }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("file round trip mismatch: %d vs %d flows", len(want), len(got))
	}
}

func TestFileReaderEarlyStop(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf, 1)
	fw.Write(t0, []Flow{sampleFlow(0), sampleFlow(1), sampleFlow(2)})
	fw.Flush()
	n := 0
	fr := NewFileReader(bytes.NewReader(buf.Bytes()))
	if err := fr.ForEach(func(Flow) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("visited %d flows", n)
	}
}

func TestUDPExportCollect(t *testing.T) {
	col, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	exp, err := DialUDP(col.Addr().String(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	want := []Flow{sampleFlow(0), sampleFlow(1), sampleFlow(2)}
	if err := exp.Export(t0, want); err != nil {
		t.Fatal(err)
	}

	var got []Flow
	malformed, err := col.Serve(time.Now().Add(500*time.Millisecond), func(f Flow) {
		got = append(got, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	if malformed != 0 {
		t.Fatalf("malformed = %d", malformed)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("UDP round trip mismatch: got %d flows", len(got))
	}
}
