//go:build race

package ipfix

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so zero-alloc tests only assert without it.
const raceEnabled = true
