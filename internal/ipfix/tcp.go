package ipfix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// TCPExporter streams IPFIX messages over a TCP connection (RFC 7011 §10.4:
// stream transports carry messages back to back; the length field frames
// them). Unlike UDP, templates need to be sent only once.
type TCPExporter struct {
	conn net.Conn
	w    *bufio.Writer
	enc  *Encoder
}

// DialTCP connects an exporter to a TCP collector.
func DialTCP(addr string, domain uint32) (*TCPExporter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipfix: dialing %q: %w", addr, err)
	}
	return &TCPExporter{
		conn: conn,
		w:    bufio.NewWriterSize(conn, 1<<16),
		enc:  NewEncoder(domain),
	}, nil
}

// Export appends flows to the stream.
func (e *TCPExporter) Export(exportTime time.Time, flows []Flow) error {
	for _, msg := range e.enc.Encode(exportTime, flows) {
		if _, err := e.w.Write(msg); err != nil {
			return err
		}
	}
	return e.w.Flush()
}

// Close flushes and closes the connection.
func (e *TCPExporter) Close() error {
	if err := e.w.Flush(); err != nil {
		e.conn.Close()
		return err
	}
	return e.conn.Close()
}

// TCPCollector accepts exporter connections and decodes their streams.
type TCPCollector struct {
	ln net.Listener
}

// ListenTCP binds a collector.
func ListenTCP(addr string) (*TCPCollector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipfix: listening on %q: %w", addr, err)
	}
	return &TCPCollector{ln: ln}, nil
}

// Addr returns the bound address.
func (c *TCPCollector) Addr() net.Addr { return c.ln.Addr() }

// AcceptOne accepts a single exporter connection and streams its flows
// through fn until the exporter closes or fn returns false. It returns the
// number of flows delivered.
func (c *TCPCollector) AcceptOne(fn func(Flow) bool) (int, error) {
	conn, err := c.ln.Accept()
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	return serveStream(conn, fn)
}

// Close stops accepting connections.
func (c *TCPCollector) Close() error { return c.ln.Close() }

// serveStream decodes back-to-back IPFIX messages from a byte stream.
func serveStream(r io.Reader, fn func(Flow) bool) (int, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	dec := NewDecoder()
	var flows []Flow
	n := 0
	for {
		var hdr [msgHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, err
		}
		total := int(binary.BigEndian.Uint16(hdr[2:]))
		if total < msgHeaderLen {
			return n, fmt.Errorf("ipfix: bad stream message length %d", total)
		}
		msg := make([]byte, total)
		copy(msg, hdr[:])
		if _, err := io.ReadFull(br, msg[msgHeaderLen:]); err != nil {
			return n, err
		}
		flows = flows[:0]
		var err error
		flows, err = dec.Decode(msg, flows)
		if err != nil {
			return n, err
		}
		for _, f := range flows {
			n++
			if !fn(f) {
				return n, nil
			}
		}
	}
}
