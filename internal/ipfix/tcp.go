package ipfix

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime/pprof"
	"sync"
	"time"

	"spoofscope/internal/obs"
)

// TCPExporter streams IPFIX messages over a TCP connection (RFC 7011 §10.4:
// stream transports carry messages back to back; the length field frames
// them). Unlike UDP, templates need to be sent only once.
type TCPExporter struct {
	conn net.Conn
	w    *bufio.Writer
	enc  *Encoder
}

// NewTCPExporter wraps an established connection — the hook for fault
// injection and custom transports. DialTCP is the common path.
func NewTCPExporter(conn net.Conn, domain uint32) *TCPExporter {
	return &TCPExporter{
		conn: conn,
		w:    bufio.NewWriterSize(conn, 1<<16),
		enc:  NewEncoder(domain),
	}
}

// DialTCP connects an exporter to a TCP collector.
func DialTCP(addr string, domain uint32) (*TCPExporter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipfix: dialing %q: %w", addr, err)
	}
	return NewTCPExporter(conn, domain), nil
}

// Export appends flows to the stream.
func (e *TCPExporter) Export(exportTime time.Time, flows []Flow) error {
	for _, msg := range e.enc.Encode(exportTime, flows) {
		if _, err := e.w.Write(msg); err != nil {
			return err
		}
	}
	return e.w.Flush()
}

// Close flushes and closes the connection.
func (e *TCPExporter) Close() error {
	if err := e.w.Flush(); err != nil {
		e.conn.Close()
		return err
	}
	return e.conn.Close()
}

// CollectorStats aggregates a collector's transport-level health counters —
// what a deployment watches to tell "quiet feed" from "degraded feed".
type CollectorStats struct {
	// Connections counts accepted exporter connections (TCP only).
	Connections int
	// Flows counts flows delivered to the callback.
	Flows int
	// Malformed counts framed-but-undecodable messages (TCP) or datagrams
	// (UDP) that were skipped rather than fatal.
	Malformed int
	// Disconnects counts connections torn down by transport, framing, or
	// deadline errors rather than an orderly exporter close.
	Disconnects int
	// Messages, RecordsDecoded, and RecordsSkipped aggregate the decoder-
	// level counters across the collector's decoders: messages decoded, data
	// records delivered, and records dropped for unknown templates or short
	// reads. (These were once exposed as bare tuples; see DecoderStats.)
	Messages       int
	RecordsDecoded int
	RecordsSkipped int
}

// TCPCollector accepts exporter connections and decodes their streams.
type TCPCollector struct {
	ln      net.Listener
	journal *obs.Journal // set by Instrument; nil = silent
	// IdleTimeout bounds per-message silence on a connection; a read that
	// exceeds it tears down that connection (counted as a disconnect).
	// Zero means no limit.
	IdleTimeout time.Duration

	mu     sync.Mutex
	fnMu   sync.Mutex
	wg     sync.WaitGroup
	conns  map[net.Conn]struct{}
	closed bool
	stats  CollectorStats
}

// ListenTCP binds a collector.
func ListenTCP(addr string) (*TCPCollector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipfix: listening on %q: %w", addr, err)
	}
	return &TCPCollector{ln: ln, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the bound address.
func (c *TCPCollector) Addr() net.Addr { return c.ln.Addr() }

// Stats returns a snapshot of the collector's health counters.
func (c *TCPCollector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// AcceptOne accepts a single exporter connection and streams its flows
// through fn until the exporter closes or fn returns false. It returns the
// number of flows delivered. Malformed-but-framed messages are skipped and
// counted, matching the UDP collector's semantics.
func (c *TCPCollector) AcceptOne(fn func(Flow) bool) (int, error) {
	return c.acceptOne(perFlowDeliver(fn))
}

// AcceptOneBatch is AcceptOne's batch-delivery form: fn receives every
// decoded message's flows as one slice instead of a call per record. The
// slice is the connection's reused scratch — valid only for the duration of
// the call; copy (or queue by value, as IngestQueue does) to retain. fn
// returning false closes the connection after counting that whole batch.
func (c *TCPCollector) AcceptOneBatch(fn func([]Flow) bool) (int, error) {
	return c.acceptOne(batchDeliver(fn))
}

func (c *TCPCollector) acceptOne(deliver func([]Flow) (int, bool)) (int, error) {
	conn, err := c.ln.Accept()
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	c.mu.Lock()
	c.stats.Connections++
	c.mu.Unlock()
	dec := NewDecoder()
	n, malformed, err := serveStream(conn, dec, c.IdleTimeout, deliver)
	c.finishStream(conn, dec, n, malformed, err)
	return n, err
}

// finishStream folds one connection's outcome — flow/malformed counts, the
// per-connection decoder's counters, and the disconnect verdict — into the
// collector's stats, and journals transport failures when instrumented.
func (c *TCPCollector) finishStream(conn net.Conn, dec *Decoder, n, malformed int, err error) {
	c.mu.Lock()
	delete(c.conns, conn)
	c.stats.Flows += n
	c.stats.Malformed += malformed
	c.stats.Messages += dec.Messages
	c.stats.RecordsDecoded += dec.RecordsDecoded
	c.stats.RecordsSkipped += dec.RecordsSkipped
	closed := c.closed
	if err != nil {
		c.stats.Disconnects++
	}
	c.mu.Unlock()
	if err != nil && !closed {
		c.journal.Recordf(obs.EventCollectorError,
			"tcp connection from %s failed after %d flows: %v", conn.RemoteAddr(), n, err)
	}
}

// Serve accepts exporter connections until Close or Shutdown, streaming
// every decoded flow through fn. Connections are handled concurrently but fn
// is invoked serially, so it needs no locking; fn returning false closes
// that one connection. A connection that fails only bumps the Disconnects
// counter — the collector keeps serving the rest. Serve returns nil after a
// shutdown, once every in-flight connection handler has drained.
func (c *TCPCollector) Serve(fn func(Flow) bool) error {
	deliver := perFlowDeliver(fn)
	return c.serveLoop(func(batch []Flow) (int, bool) {
		c.fnMu.Lock()
		defer c.fnMu.Unlock()
		return deliver(batch)
	})
}

// ServeBatch is Serve's batch-delivery form: fn receives every decoded
// message's flows as one slice — the hand-off a LiveRuntime's IngestBatch
// wants, one queue wake per IPFIX message instead of per record. Batches
// from concurrent connections are delivered serially (no locking needed in
// fn), but the slice is that connection's reused scratch — valid only for
// the duration of the call; copy or queue by value to retain. fn returning
// false closes that one connection.
func (c *TCPCollector) ServeBatch(fn func([]Flow) bool) error {
	deliver := batchDeliver(fn)
	return c.serveLoop(func(batch []Flow) (int, bool) {
		c.fnMu.Lock()
		defer c.fnMu.Unlock()
		return deliver(batch)
	})
}

// serveLoop is the accept loop Serve and ServeBatch share: one goroutine per
// connection (labelled stage=decode for profilers), outcomes folded into the
// collector's stats as each stream ends.
func (c *TCPCollector) serveLoop(deliver func([]Flow) (int, bool)) error {
	defer c.wg.Wait()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c.mu.Lock()
		c.stats.Connections++
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go func(conn net.Conn) {
			defer c.wg.Done()
			defer conn.Close()
			pprof.Do(context.Background(), pprof.Labels("stage", "decode"), func(context.Context) {
				dec := NewDecoder()
				n, malformed, err := serveStream(conn, dec, c.IdleTimeout, deliver)
				c.finishStream(conn, dec, n, malformed, err)
			})
		}(conn)
	}
}

// Close stops accepting and aborts the active connections; Serve returns
// once their handlers drain. Use Shutdown to let exporters finish instead.
func (c *TCPCollector) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	return err
}

// Shutdown stops accepting new connections and waits for the active ones to
// end naturally (exporter close or idle timeout) — the graceful counterpart
// of Close. It must not be called from inside the Serve callback.
func (c *TCPCollector) Shutdown() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

// readDeadliner is the subset of net.Conn serveStream needs for idle
// timeouts; plain io.Readers (tests, files) simply run without deadlines.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// perFlowDeliver adapts a per-flow callback to serveStream's batch contract,
// reporting how many flows were consumed so a mid-batch stop keeps the exact
// per-flow delivery count.
func perFlowDeliver(fn func(Flow) bool) func([]Flow) (int, bool) {
	return func(batch []Flow) (int, bool) {
		for i := range batch {
			if !fn(batch[i]) {
				return i + 1, false
			}
		}
		return len(batch), true
	}
}

// batchDeliver adapts a whole-batch callback: the batch counts in full even
// when fn stops the stream, since fn saw every flow in it.
func batchDeliver(fn func([]Flow) bool) func([]Flow) (int, bool) {
	return func(batch []Flow) (int, bool) {
		return len(batch), fn(batch)
	}
}

// streamScratch is one connection's reusable decode buffers: the framed
// message bytes and the flow batch the decoder appends into. Pooled across
// connections so a collector serving short-lived exporter sessions reaches
// steady state with zero per-message allocations — the buffers grow to the
// feed's message size once and then recirculate.
type streamScratch struct {
	msg   []byte
	flows []Flow
}

var scratchPool = sync.Pool{New: func() any {
	return &streamScratch{msg: make([]byte, 1<<16), flows: make([]Flow, 0, 256)}
}}

// serveStream decodes back-to-back IPFIX messages from a byte stream into
// dec (one decoder per connection: templates are per-stream state), handing
// each message's flows to deliver as one batch. The batch slice is pooled
// scratch reused for the next message — deliver must consume or copy it
// before returning. A message that frames correctly but fails to decode is
// skipped and counted in malformed — one bad export must not tear down the
// feed. Only a framing failure (garbage length, short read, deadline) ends
// the stream with an error, because message boundaries are lost at that
// point. The caller owns dec and harvests its counters after the stream
// ends.
func serveStream(r io.Reader, dec *Decoder, idle time.Duration, deliver func([]Flow) (int, bool)) (n, malformed int, err error) {
	rd, hasDeadline := r.(readDeadliner)
	br := bufio.NewReaderSize(r, 1<<16)
	sc := scratchPool.Get().(*streamScratch)
	defer scratchPool.Put(sc)
	for {
		if hasDeadline && idle > 0 {
			if err := rd.SetReadDeadline(time.Now().Add(idle)); err != nil {
				return n, malformed, err
			}
		}
		// The header reads into the scratch buffer's prefix (a stack array
		// would escape through io.ReadFull and cost one heap allocation per
		// message); the body then lands right behind it.
		hdr := sc.msg[:msgHeaderLen]
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return n, malformed, nil
			}
			return n, malformed, err
		}
		total := int(binary.BigEndian.Uint16(hdr[2:]))
		if total < msgHeaderLen {
			return n, malformed, fmt.Errorf("ipfix: bad stream message length %d", total)
		}
		if cap(sc.msg) < total {
			grown := make([]byte, total)
			copy(grown, hdr)
			sc.msg = grown
		}
		msg := sc.msg[:total]
		if _, err := io.ReadFull(br, msg[msgHeaderLen:]); err != nil {
			return n, malformed, err
		}
		var derr error
		sc.flows, derr = dec.AppendFlows(msg, sc.flows[:0])
		if derr != nil {
			// The length field framed the message, so the stream is still
			// in sync: skip it and keep serving.
			malformed++
			continue
		}
		if len(sc.flows) == 0 {
			continue // template-only message
		}
		consumed, ok := deliver(sc.flows)
		n += consumed
		if !ok {
			return n, malformed, nil
		}
	}
}
