package ipfix

import (
	"reflect"
	"testing"
)

func TestTCPExportCollect(t *testing.T) {
	col, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	want := make([]Flow, 120)
	for i := range want {
		want[i] = sampleFlow(i)
	}

	go func() {
		exp, err := DialTCP(col.Addr().String(), 9)
		if err != nil {
			t.Error(err)
			return
		}
		// Two batches over one connection: the template goes once.
		if err := exp.Export(t0, want[:50]); err != nil {
			t.Error(err)
		}
		if err := exp.Export(t0, want[50:]); err != nil {
			t.Error(err)
		}
		exp.Close()
	}()

	var got []Flow
	n, err := col.AcceptOne(func(f Flow) bool {
		got = append(got, f)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("delivered %d of %d flows", n, len(want))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("TCP round trip mismatch")
	}
}

func TestTCPCollectorEarlyStop(t *testing.T) {
	col, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	go func() {
		exp, err := DialTCP(col.Addr().String(), 1)
		if err != nil {
			return
		}
		defer exp.Close()
		flows := make([]Flow, 100)
		for i := range flows {
			flows[i] = sampleFlow(i)
		}
		exp.Export(t0, flows)
	}()
	n, err := col.AcceptOne(func(Flow) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop delivered %d flows", n)
	}
}
