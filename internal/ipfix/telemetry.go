package ipfix

import "spoofscope/internal/obs"

// registerCollector exposes one collector's CollectorStats through the
// registry, labeled collector=name. Every metric is func-backed over the
// same snapshot Stats() returns, so a scrape and a Stats() call can never
// disagree.
func registerCollector(m *obs.Registry, name string, stats func() CollectorStats) {
	label := obs.Label{Name: "collector", Value: name}
	counter := func(metric, help string, field func(CollectorStats) int) {
		m.CounterFunc(metric, help, func() uint64 { return uint64(field(stats())) }, label)
	}
	m.GaugeFunc("spoofscope_collector_connections",
		"Accepted exporter connections (TCP only; zero for UDP and files).",
		func() float64 { return float64(stats().Connections) }, label)
	counter("spoofscope_collector_flows_total",
		"Flows delivered to the collector callback.",
		func(s CollectorStats) int { return s.Flows })
	counter("spoofscope_collector_malformed_total",
		"Framed-but-undecodable messages or datagrams skipped.",
		func(s CollectorStats) int { return s.Malformed })
	counter("spoofscope_collector_disconnects_total",
		"Connections torn down by transport, framing, or deadline errors.",
		func(s CollectorStats) int { return s.Disconnects })
	counter("spoofscope_collector_messages_total",
		"IPFIX messages decoded.",
		func(s CollectorStats) int { return s.Messages })
	counter("spoofscope_collector_records_decoded_total",
		"Data records decoded and delivered.",
		func(s CollectorStats) int { return s.RecordsDecoded })
	counter("spoofscope_collector_records_skipped_total",
		"Data records dropped for unknown templates or short reads.",
		func(s CollectorStats) int { return s.RecordsSkipped })
}

// Instrument registers the collector's health counters with t's registry
// under collector=name and journals connection failures. Call before Serve.
func (c *TCPCollector) Instrument(t *obs.Telemetry, name string) {
	if t == nil {
		return
	}
	c.journal = t.Journal
	registerCollector(t.Metrics, name, c.Stats)
}

// Instrument registers the collector's health counters with t's registry
// under collector=name. Call before Serve.
func (c *UDPCollector) Instrument(t *obs.Telemetry, name string) {
	if t == nil {
		return
	}
	registerCollector(t.Metrics, name, c.Stats)
}
