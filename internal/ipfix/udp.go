package ipfix

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// UDPExporter sends IPFIX messages to a collector over UDP, re-sending the
// template periodically as RFC 7011 §8.1 requires for unreliable transports.
type UDPExporter struct {
	conn net.Conn
	enc  *Encoder
	// TemplateEvery controls template retransmission (default: every 20
	// data messages).
	TemplateEvery int
	sinceTemplate int
}

// NewUDPExporter wraps an already-connected datagram socket — the hook for
// fault injection and custom transports. DialUDP is the common path.
func NewUDPExporter(conn net.Conn, domain uint32) *UDPExporter {
	return &UDPExporter{conn: conn, enc: NewEncoder(domain), TemplateEvery: 20}
}

// DialUDP connects an exporter to addr (e.g. "127.0.0.1:4739").
func DialUDP(addr string, domain uint32) (*UDPExporter, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipfix: resolving %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("ipfix: dialing %q: %w", addr, err)
	}
	return NewUDPExporter(conn, domain), nil
}

// Export sends flows, preceded by the template when due.
func (e *UDPExporter) Export(exportTime time.Time, flows []Flow) error {
	if e.sinceTemplate >= e.TemplateEvery {
		if _, err := e.conn.Write(e.enc.TemplateMessage(exportTime)); err != nil {
			return err
		}
		e.sinceTemplate = 0
	}
	for _, msg := range e.enc.Encode(exportTime, flows) {
		if _, err := e.conn.Write(msg); err != nil {
			return err
		}
		e.sinceTemplate++
	}
	return nil
}

// Close closes the underlying socket.
func (e *UDPExporter) Close() error { return e.conn.Close() }

// UDPCollector receives IPFIX messages on a datagram socket and hands
// decoded flows to a callback.
type UDPCollector struct {
	conn net.PacketConn
	dec  *Decoder

	mu     sync.Mutex
	closed bool
	stats  CollectorStats
}

// NewUDPCollector wraps an already-bound datagram socket — the hook for
// fault injection (faultnet.WrapPacket) and custom transports, mirroring
// NewTCPExporter on the send side. ListenUDP is the common path.
func NewUDPCollector(pc net.PacketConn) *UDPCollector {
	return &UDPCollector{conn: pc, dec: NewDecoder()}
}

// ListenUDP binds a collector to addr. Use port 0 for an ephemeral port and
// Addr() to discover it.
func ListenUDP(addr string) (*UDPCollector, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipfix: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("ipfix: listening on %q: %w", addr, err)
	}
	return NewUDPCollector(conn), nil
}

// Addr returns the bound address.
func (c *UDPCollector) Addr() net.Addr { return c.conn.LocalAddr() }

// Serve reads datagrams until the socket is closed or the deadline passes,
// invoking fn for every decoded flow. Malformed datagrams are counted and
// skipped. It returns the number of malformed datagrams.
func (c *UDPCollector) Serve(deadline time.Time, fn func(Flow)) (malformed int, err error) {
	return c.serveDatagrams(deadline, func(batch []Flow) bool {
		for i := range batch {
			fn(batch[i])
		}
		return true
	})
}

// ServeBatch is Serve's batch-delivery form: fn receives each datagram's
// decoded flows as one slice — one runtime queue wake per IPFIX message
// instead of per record. The slice is the collector's reused scratch, valid
// only for the duration of the call; copy or queue by value to retain. fn
// returning false stops serving (nil error), the batch-path counterpart of
// closing the socket.
func (c *UDPCollector) ServeBatch(deadline time.Time, fn func([]Flow) bool) (malformed int, err error) {
	return c.serveDatagrams(deadline, fn)
}

func (c *UDPCollector) serveDatagrams(deadline time.Time, deliver func([]Flow) bool) (malformed int, err error) {
	if !deadline.IsZero() {
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, 65536)
	var flows []Flow
	for {
		n, _, err := c.conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return malformed, nil
			}
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				// Orderly Shutdown, not a socket failure.
				return malformed, nil
			}
			return malformed, err
		}
		batch, derr := c.dec.AppendFlows(buf[:n], flows[:0])
		if derr != nil {
			malformed++
			c.mu.Lock()
			c.stats.Malformed++
			c.syncDecoderLocked()
			c.mu.Unlock()
			continue
		}
		flows = batch // reuse the grown buffer across datagrams
		c.mu.Lock()
		c.stats.Flows += len(batch)
		c.syncDecoderLocked()
		c.mu.Unlock()
		if len(batch) > 0 && !deliver(batch) {
			return malformed, nil
		}
	}
}

// Close closes the socket, unblocking Serve. Serve reports the closed
// socket as an error; use Shutdown for an orderly stop.
func (c *UDPCollector) Close() error { return c.conn.Close() }

// Shutdown stops the collector cleanly: it closes the socket to unblock
// Serve, which then returns nil instead of the socket-closed error —
// parity with TCPCollector, distinguishing an orderly stop from a socket
// failure.
func (c *UDPCollector) Shutdown() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// syncDecoderLocked mirrors the decoder's counters into the stats snapshot.
// The decoder itself is touched only by the Serve goroutine; copying under
// c.mu at the points Serve already locks lets Stats read them race-free.
func (c *UDPCollector) syncDecoderLocked() {
	c.stats.Messages = c.dec.Messages
	c.stats.RecordsDecoded = c.dec.RecordsDecoded
	c.stats.RecordsSkipped = c.dec.RecordsSkipped
}

// Stats returns the collector's health counters (Connections stays zero:
// UDP has no connections to count). Decoder-level counters are current as
// of the last datagram Serve finished with.
func (c *UDPCollector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// DecoderStats exposes decoder-level statistics.
//
// Deprecated: use Stats, whose Messages, RecordsDecoded, and RecordsSkipped
// fields carry the same counters on the shared CollectorStats struct.
func (c *UDPCollector) DecoderStats() (messages, decoded, skipped int) {
	st := c.Stats()
	return st.Messages, st.RecordsDecoded, st.RecordsSkipped
}
