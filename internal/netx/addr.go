// Package netx provides compact IPv4 address and prefix types together with
// the data structures the spoofing classifier is built on: a longest-prefix
// match radix trie, immutable address interval sets with /24-equivalent
// accounting, and dense bitsets.
//
// Addresses are represented as host-order uint32 scalars (Addr) so that the
// hot classification path never allocates. Conversions to and from the
// standard library's net and netip types are provided at the edges.
package netx

import (
	"fmt"
	"net/netip"
)

// Addr is an IPv4 address as a host-order 32-bit scalar.
// The zero value is 0.0.0.0.
type Addr uint32

// AddrFrom4 builds an Addr from four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// AddrFromNetip converts a netip.Addr. It reports ok=false for non-IPv4
// addresses (including IPv4-mapped IPv6, which is unmapped first).
func AddrFromNetip(ip netip.Addr) (Addr, bool) {
	ip = ip.Unmap()
	if !ip.Is4() {
		return 0, false
	}
	b := ip.As4()
	return AddrFrom4(b[0], b[1], b[2], b[3]), true
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	ip, err := netip.ParseAddr(s)
	if err != nil {
		return 0, err
	}
	a, ok := AddrFromNetip(ip)
	if !ok {
		return 0, fmt.Errorf("netx: %q is not an IPv4 address", s)
	}
	return a, nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Netip converts back to a netip.Addr.
func (a Addr) Netip() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}

// Octets returns the four dotted-quad octets.
func (a Addr) Octets() (o0, o1, o2, o3 byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// Slash8 returns the address's /8 bin index (its first octet).
func (a Addr) Slash8() int { return int(a >> 24) }

// Slash24 returns the index of the /24 block containing a.
func (a Addr) Slash24() uint32 { return uint32(a) >> 8 }

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix is an IPv4 CIDR prefix. Addr holds the network address with host
// bits zeroed; Bits is the prefix length in [0,32].
type Prefix struct {
	Addr Addr
	Bits uint8
}

// PrefixFrom masks addr to bits host-zeroed and returns the prefix.
// It panics if bits > 32.
func PrefixFrom(addr Addr, bits uint8) Prefix {
	if bits > 32 {
		panic(fmt.Sprintf("netx: invalid prefix length %d", bits))
	}
	return Prefix{Addr: addr & Addr(maskOf(bits)), Bits: bits}
}

// ParsePrefix parses CIDR notation such as "192.0.2.0/24". Host bits are
// zeroed, matching the behaviour of router configuration rather than
// netip.ParsePrefix (which rejects set host bits).
func ParsePrefix(s string) (Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, err
	}
	a, ok := AddrFromNetip(p.Addr())
	if !ok {
		return Prefix{}, fmt.Errorf("netx: %q is not an IPv4 prefix", s)
	}
	return PrefixFrom(a, uint8(p.Bits())), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// maskOf returns the netmask for a prefix length as a uint32.
func maskOf(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// Mask returns the prefix's netmask.
func (p Prefix) Mask() uint32 { return maskOf(p.Bits) }

// Contains reports whether the prefix covers addr.
func (p Prefix) Contains(a Addr) bool {
	return uint32(a)&p.Mask() == uint32(p.Addr)
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits <= q.Bits {
		return p.Contains(q.Addr)
	}
	return q.Contains(p.Addr)
}

// First returns the lowest address in the prefix (the network address).
func (p Prefix) First() Addr { return p.Addr }

// Last returns the highest address in the prefix (the broadcast address).
func (p Prefix) Last() Addr { return Addr(uint32(p.Addr) | ^p.Mask()) }

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - p.Bits) }

// Slash24Equivalents returns the prefix's size in /24 equivalents.
// Prefixes longer than /24 count fractionally toward zero and are reported
// as 0 here; use NumAddrs for exact accounting.
func (p Prefix) Slash24Equivalents() uint64 {
	if p.Bits > 24 {
		return 0
	}
	return 1 << (24 - p.Bits)
}

// IsValid reports whether the prefix is well formed (host bits zero,
// length in range).
func (p Prefix) IsValid() bool {
	return p.Bits <= 32 && uint32(p.Addr)&^p.Mask() == 0
}

func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}

// Compare orders prefixes by network address, then by length (shorter first).
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Addr < q.Addr:
		return -1
	case p.Addr > q.Addr:
		return 1
	case p.Bits < q.Bits:
		return -1
	case p.Bits > q.Bits:
		return 1
	}
	return 0
}
