package netx

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAddrRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "255.255.255.255", "192.0.2.1", "10.0.0.1", "198.51.100.77"}
	for _, s := range cases {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if got := a.String(); got != s {
			t.Errorf("ParseAddr(%q).String() = %q", s, got)
		}
		if got := a.Netip(); got != netip.MustParseAddr(s) {
			t.Errorf("Netip(%q) = %v", s, got)
		}
	}
}

func TestAddrRejectsIPv6(t *testing.T) {
	if _, err := ParseAddr("2001:db8::1"); err == nil {
		t.Fatal("ParseAddr accepted IPv6")
	}
	if _, ok := AddrFromNetip(netip.MustParseAddr("::1")); ok {
		t.Fatal("AddrFromNetip accepted IPv6")
	}
}

func TestAddrFromNetipUnmaps(t *testing.T) {
	a, ok := AddrFromNetip(netip.MustParseAddr("::ffff:192.0.2.9"))
	if !ok || a != MustParseAddr("192.0.2.9") {
		t.Fatalf("IPv4-mapped conversion failed: %v %v", a, ok)
	}
}

func TestAddrOctetsAndBins(t *testing.T) {
	a := AddrFrom4(203, 0, 113, 200)
	o0, o1, o2, o3 := a.Octets()
	if o0 != 203 || o1 != 0 || o2 != 113 || o3 != 200 {
		t.Fatalf("Octets = %d.%d.%d.%d", o0, o1, o2, o3)
	}
	if a.Slash8() != 203 {
		t.Fatalf("Slash8 = %d", a.Slash8())
	}
	if a.Slash24() != uint32(a)>>8 {
		t.Fatalf("Slash24 = %d", a.Slash24())
	}
}

func TestPrefixMasking(t *testing.T) {
	p := PrefixFrom(MustParseAddr("192.0.2.77"), 24)
	if p.Addr != MustParseAddr("192.0.2.0") {
		t.Fatalf("host bits not zeroed: %v", p)
	}
	if !p.Contains(MustParseAddr("192.0.2.255")) {
		t.Error("Contains failed for last address")
	}
	if p.Contains(MustParseAddr("192.0.3.0")) {
		t.Error("Contains matched outside prefix")
	}
	if p.NumAddrs() != 256 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if p.Slash24Equivalents() != 1 {
		t.Errorf("Slash24Equivalents = %d", p.Slash24Equivalents())
	}
}

func TestPrefixEdgeLengths(t *testing.T) {
	all := PrefixFrom(0, 0)
	if all.NumAddrs() != 1<<32 {
		t.Errorf("/0 NumAddrs = %d", all.NumAddrs())
	}
	if !all.Contains(MustParseAddr("255.255.255.255")) {
		t.Error("/0 must contain everything")
	}
	host := MustParsePrefix("198.51.100.4/32")
	if host.NumAddrs() != 1 || host.First() != host.Last() {
		t.Errorf("/32 size wrong: %v", host)
	}
	if host.Slash24Equivalents() != 0 {
		t.Errorf("/32 Slash24Equivalents = %d", host.Slash24Equivalents())
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixCompare(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.0.0.0/16"),
		MustParsePrefix("10.0.1.0/24"),
		MustParsePrefix("192.0.2.0/24"),
	}
	for i := 0; i < len(ps); i++ {
		for j := 0; j < len(ps); j++ {
			got := ps[i].Compare(ps[j])
			switch {
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", ps[i], ps[j], got)
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", ps[i], ps[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", ps[i], ps[j], got)
			}
		}
	}
}

func TestPrefixContainsMatchesInterval(t *testing.T) {
	// Property: Prefix.Contains agrees with the [First,Last] interval.
	f := func(addr uint32, bits uint8, probe uint32) bool {
		p := PrefixFrom(Addr(addr), bits%33)
		in := Addr(probe) >= p.First() && Addr(probe) <= p.Last()
		return p.Contains(Addr(probe)) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	f := func(addr uint32, bits uint8) bool {
		p := PrefixFrom(Addr(addr), bits%33)
		q, err := ParsePrefix(p.String())
		return err == nil && p == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
