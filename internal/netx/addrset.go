package netx

// AddrSet is an immutable open-addressing hash set of addresses, built once
// and queried on the classification hot path. A Go map[Addr]bool pays a
// hashed bucket walk plus interface-free but still multi-load internals per
// lookup; AddrSet is a single power-of-two slot array probed linearly from a
// multiplicative hash — one or two cache lines per query at load factor
// <= 0.5. The zero value contains nothing; build with NewAddrSet.
type AddrSet struct {
	slots   []uint32 // open-addressed; 0 is the empty sentinel
	mask    uint32
	hasZero bool // address 0 stored out of band (0 marks empty slots)
	size    int
}

// NewAddrSet builds a set holding exactly the given addresses.
func NewAddrSet(addrs []Addr) *AddrSet {
	s := &AddrSet{}
	// Size to the next power of two at or above 2*len so the load factor
	// stays at or below 0.5 and linear probes stay short.
	n := 8
	for n < 2*len(addrs) {
		n <<= 1
	}
	s.slots = make([]uint32, n)
	s.mask = uint32(n - 1)
	for _, a := range addrs {
		v := uint32(a)
		if v == 0 {
			if !s.hasZero {
				s.hasZero = true
				s.size++
			}
			continue
		}
		i := hashAddr(v) & s.mask
		for s.slots[i] != 0 {
			if s.slots[i] == v {
				i = ^uint32(0)
				break
			}
			i = (i + 1) & s.mask
		}
		if i != ^uint32(0) {
			s.slots[i] = v
			s.size++
		}
	}
	return s
}

// hashAddr is Knuth's multiplicative hash; the high bits carry the
// mixing, so the slot index uses them via the full 32-bit product folded
// by the power-of-two mask after a spread.
func hashAddr(v uint32) uint32 {
	h := v * 2654435761
	return h ^ (h >> 16)
}

// Contains reports whether a is in the set.
func (s *AddrSet) Contains(a Addr) bool {
	v := uint32(a)
	if v == 0 {
		return s.hasZero
	}
	if len(s.slots) == 0 {
		return false
	}
	i := hashAddr(v) & s.mask
	for {
		sl := s.slots[i]
		if sl == v {
			return true
		}
		if sl == 0 {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// Len returns the number of distinct addresses stored.
func (s *AddrSet) Len() int { return s.size }
