package netx

import (
	"math/rand"
	"testing"
)

func TestAddrSetBasic(t *testing.T) {
	s := NewAddrSet([]Addr{MustParseAddr("10.0.0.1"), MustParseAddr("192.0.2.7")})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(MustParseAddr("10.0.0.1")) || !s.Contains(MustParseAddr("192.0.2.7")) {
		t.Fatal("stored address missing")
	}
	if s.Contains(MustParseAddr("10.0.0.2")) || s.Contains(0) {
		t.Fatal("unstored address found")
	}
}

func TestAddrSetZeroAndDuplicates(t *testing.T) {
	s := NewAddrSet([]Addr{0, 0, 5, 5, 5})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after dedup", s.Len())
	}
	if !s.Contains(0) || !s.Contains(5) {
		t.Fatal("member missing")
	}
	empty := NewAddrSet(nil)
	if empty.Contains(0) || empty.Contains(1) || empty.Len() != 0 {
		t.Fatal("empty set matched")
	}
	var zero AddrSet
	if zero.Contains(0) || zero.Contains(42) {
		t.Fatal("zero value matched")
	}
}

// TestAddrSetProperty checks AddrSet against a Go map over adversarial
// inputs: clustered addresses (shared high bits defeat weak hashes) and
// uniform noise.
func TestAddrSetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		n := rng.Intn(2000)
		ref := make(map[Addr]bool, n)
		addrs := make([]Addr, 0, n)
		base := Addr(rng.Uint32())
		for i := 0; i < n; i++ {
			var a Addr
			switch i % 3 {
			case 0:
				a = Addr(rng.Uint32())
			case 1:
				a = base + Addr(rng.Intn(64)) // dense cluster
			default:
				a = Addr(rng.Uint32()) &^ 0xFFFF // whole-chunk collisions
			}
			ref[a] = true
			addrs = append(addrs, a)
		}
		s := NewAddrSet(addrs)
		if s.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
		}
		for a := range ref {
			if !s.Contains(a) {
				t.Fatalf("missing member %v", a)
			}
		}
		for probe := 0; probe < 2000; probe++ {
			a := Addr(rng.Uint32())
			if s.Contains(a) != ref[a] {
				t.Fatalf("Contains(%v) = %v, want %v", a, s.Contains(a), ref[a])
			}
		}
	}
}
