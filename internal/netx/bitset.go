package netx

import "math/bits"

// Bitset is a dense fixed-capacity bitset used for reachability computations
// over AS graphs (node indices are small dense integers).
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset able to hold n bits, all clear.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the bit capacity.
func (b *Bitset) Cap() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Or merges other into b (b |= other). The sets must have equal capacity.
func (b *Bitset) Or(other *Bitset) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// ForEach calls fn for every set bit index in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*64 + tz)
			w &= w - 1
		}
	}
}

// ContainsAll reports whether every bit set in other is also set in b.
func (b *Bitset) ContainsAll(other *Bitset) bool {
	for i, w := range other.words {
		if b.words[i]&w != w {
			return false
		}
	}
	return true
}
