package netx

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Cap() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitset: cap=%d count=%d", b.Cap(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 3 {
		t.Fatal("Clear failed")
	}
}

func TestBitsetOrAndContainsAll(t *testing.T) {
	a, b := NewBitset(200), NewBitset(200)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(199)
	a.Or(b)
	for _, i := range []int{1, 100, 199} {
		if !a.Test(i) {
			t.Fatalf("bit %d lost after Or", i)
		}
	}
	if !a.ContainsAll(b) {
		t.Fatal("a must contain b after a |= b")
	}
	if b.ContainsAll(a) {
		t.Fatal("b must not contain a")
	}
}

func TestBitsetForEachOrder(t *testing.T) {
	b := NewBitset(300)
	want := []int{3, 64, 65, 128, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v", got)
		}
	}
}

func TestBitsetCloneIndependent(t *testing.T) {
	a := NewBitset(64)
	a.Set(7)
	c := a.Clone()
	c.Set(8)
	if a.Test(8) {
		t.Fatal("Clone shares storage")
	}
	if !c.Test(7) {
		t.Fatal("Clone lost bits")
	}
}

func TestBitsetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBitset(1000)
	ref := map[int]bool{}
	for i := 0; i < 5000; i++ {
		k := rng.Intn(1000)
		if rng.Intn(3) == 0 {
			b.Clear(k)
			delete(ref, k)
		} else {
			b.Set(k)
			ref[k] = true
		}
	}
	if b.Count() != len(ref) {
		t.Fatalf("Count = %d want %d", b.Count(), len(ref))
	}
	for k := range ref {
		if !b.Test(k) {
			t.Fatalf("bit %d missing", k)
		}
	}
}
