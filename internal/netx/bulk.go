package netx

import (
	"math/bits"
	"sort"
)

// BuildLPM compiles (prefix, value) pairs straight into an immutable LPM,
// replacing the insert-then-Freeze path for full-table builds. Prefixes are
// inserted in sorted (address, length) order so consecutive prefixes share
// their trie path: the node arena is sized exactly in a pre-pass and each
// insert resumes from the longest common prefix with its predecessor
// instead of re-walking from the root. values == nil stores 1 for every
// prefix (membership-only tables). Duplicate prefixes keep the value that
// appears last in the input, matching repeated Trie.Insert.
func BuildLPM(prefixes []Prefix, values []uint32) *LPM {
	if len(prefixes) == 0 {
		return &LPM{nodes: make([]trieNode, 1)}
	}
	order := make([]int32, len(prefixes))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := prefixes[order[a]], prefixes[order[b]]
		if pa.Addr != pb.Addr {
			return pa.Addr < pb.Addr
		}
		return pa.Bits < pb.Bits
	})

	// Exact node count: each prefix adds one node per bit past the longest
	// common prefix with its sorted predecessor (which, in sorted order, is
	// the longest common prefix with anything already inserted).
	total := 1
	for k, oi := range order {
		p := prefixes[oi]
		lcp := 0
		if k > 0 {
			lcp = commonBits(prefixes[order[k-1]], p)
		}
		total += int(p.Bits) - lcp
	}

	nodes := make([]trieNode, 1, total)
	var path [33]int32 // path[d] = node index at depth d along the last prefix
	size := 0
	for k, oi := range order {
		p := prefixes[oi]
		start := 0
		if k > 0 {
			start = commonBits(prefixes[order[k-1]], p)
		}
		cur := path[start]
		addr := uint32(p.Addr)
		for depth := uint8(start); depth < p.Bits; depth++ {
			bit := (addr >> (31 - depth)) & 1
			next := nodes[cur].child[bit]
			if next == 0 {
				nodes = append(nodes, trieNode{})
				next = int32(len(nodes) - 1)
				nodes[cur].child[bit] = next
			}
			cur = next
			path[depth+1] = cur
		}
		if !nodes[cur].set {
			size++
		}
		v := uint32(1)
		if values != nil {
			v = values[oi]
		}
		nodes[cur].value = v
		nodes[cur].set = true
	}
	return &LPM{nodes: nodes, size: size}
}

// commonBits returns the length of the longest common prefix of a and b as
// bit strings: capped by both lengths and the first differing address bit.
func commonBits(a, b Prefix) int {
	n := int(a.Bits)
	if int(b.Bits) < n {
		n = int(b.Bits)
	}
	if x := uint32(a.Addr) ^ uint32(b.Addr); x != 0 {
		if lz := bits.LeadingZeros32(x); lz < n {
			n = lz
		}
	}
	return n
}
