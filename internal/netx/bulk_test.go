package netx

import (
	"math/rand"
	"testing"
)

// TestBuildLPMMatchesTrie is the equivalence property for the bulk
// constructor: over random prefix sets (duplicates included, which must
// keep the last value like Trie.Insert), BuildLPM's compiled LPM must
// answer Lookup and Matches identically to Insert+Freeze, with the same
// node count.
func TestBuildLPMMatchesTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		n := rng.Intn(200)
		prefixes := make([]Prefix, 0, n+4)
		values := make([]uint32, 0, n+4)
		add := func(p Prefix, v uint32) {
			prefixes = append(prefixes, p)
			values = append(values, v)
		}
		for i := 0; i < n; i++ {
			bits := uint8(rng.Intn(25)) // includes 0 (default route)
			p := Prefix{Addr: Addr(rng.Uint32()), Bits: bits}
			p.Addr &= Addr(p.Mask())
			add(p, uint32(rng.Intn(1000)))
		}
		if n > 0 {
			// Force duplicates: re-add some prefixes with new values.
			for i := 0; i < 1+n/10; i++ {
				add(prefixes[rng.Intn(n)], uint32(1000+rng.Intn(1000)))
			}
		}
		ref := NewTrie()
		for i, p := range prefixes {
			ref.Insert(p, values[i])
		}
		want := ref.Freeze()
		got := BuildLPM(prefixes, values)
		if got.Len() != want.Len() {
			t.Fatalf("iter %d: Len = %d, want %d", iter, got.Len(), want.Len())
		}
		for probe := 0; probe < 500; probe++ {
			var a Addr
			if len(prefixes) > 0 && probe%2 == 0 {
				// Half the probes land inside or near a stored prefix.
				p := prefixes[rng.Intn(len(prefixes))]
				a = p.Addr | Addr(rng.Uint32()&^p.Mask())
			} else {
				a = Addr(rng.Uint32())
			}
			gv, gok := got.Lookup(a)
			wv, wok := want.Lookup(a)
			if gv != wv || gok != wok {
				t.Fatalf("iter %d: Lookup(%v) = %d,%v want %d,%v", iter, a, gv, gok, wv, wok)
			}
			var gm, wm []uint64
			got.Matches(a, func(bits uint8, v uint32) bool {
				gm = append(gm, uint64(bits)<<32|uint64(v))
				return true
			})
			want.Matches(a, func(bits uint8, v uint32) bool {
				wm = append(wm, uint64(bits)<<32|uint64(v))
				return true
			})
			if len(gm) != len(wm) {
				t.Fatalf("iter %d: Matches(%v) count %d want %d", iter, a, len(gm), len(wm))
			}
			for i := range gm {
				if gm[i] != wm[i] {
					t.Fatalf("iter %d: Matches(%v)[%d] = %x want %x", iter, a, i, gm[i], wm[i])
				}
			}
		}
	}
}

// TestBuildLPMNilValues covers the presence-set form (values == nil): every
// inserted prefix must answer Contains like a Trie of 1-values.
func TestBuildLPMNilValues(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("192.0.2.0/24"),
	}
	l := BuildLPM(ps, nil)
	for _, c := range []struct {
		addr string
		want bool
	}{
		{"10.2.3.4", true},
		{"10.1.200.1", true},
		{"192.0.2.99", true},
		{"192.0.3.1", false},
		{"11.0.0.1", false},
	} {
		if got := l.Contains(MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
	if empty := BuildLPM(nil, nil); empty.Contains(MustParseAddr("10.0.0.1")) {
		t.Error("empty BuildLPM must contain nothing")
	}
}
