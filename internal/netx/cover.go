package netx

import "math/bits"

// Prefixes returns the minimal CIDR cover of the set: the shortest list of
// prefixes whose union is exactly the set. This is the canonical
// "interval set to router ACL" conversion (greedy largest-aligned-block).
func (s IntervalSet) Prefixes() []Prefix {
	var out []Prefix
	for _, iv := range s.ivs {
		out = appendCover(out, uint64(iv.Lo), uint64(iv.Hi))
	}
	return out
}

// appendCover emits the minimal prefixes covering [lo, hi] (inclusive,
// 64-bit arithmetic avoids overflow at 255.255.255.255).
func appendCover(out []Prefix, lo, hi uint64) []Prefix {
	for lo <= hi {
		// The largest block starting at lo: limited by lo's alignment and
		// by the remaining span.
		align := uint(bits.TrailingZeros64(lo))
		if lo == 0 {
			align = 32
		}
		if align > 32 {
			align = 32
		}
		span := hi - lo + 1
		size := uint(bits.Len64(span)) - 1 // floor(log2(span))
		if align < size {
			size = align
		}
		out = append(out, Prefix{Addr: Addr(lo), Bits: uint8(32 - size)})
		lo += 1 << size
		if lo == 0 {
			break // wrapped past 255.255.255.255
		}
	}
	return out
}
