package netx

import (
	"math/rand"
	"testing"
)

func TestPrefixesExactBlocks(t *testing.T) {
	s := IntervalSetOfPrefixes(MustParsePrefix("10.0.0.0/8"), MustParsePrefix("192.0.2.0/24"))
	ps := s.Prefixes()
	if len(ps) != 2 {
		t.Fatalf("cover = %v", ps)
	}
	if !IntervalSetOfPrefixes(ps...).Equal(s) {
		t.Fatal("cover does not reproduce the set")
	}
}

func TestPrefixesSplitsUnaligned(t *testing.T) {
	// [10.0.0.1, 10.0.0.6] needs /32 /31 /31 /32 = {1, 2-3, 4-5, 6}.
	s := NewIntervalSet(Interval{MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.6")})
	ps := s.Prefixes()
	if len(ps) != 4 {
		t.Fatalf("cover = %v", ps)
	}
	if !IntervalSetOfPrefixes(ps...).Equal(s) {
		t.Fatal("cover mismatch")
	}
}

func TestPrefixesWholeSpace(t *testing.T) {
	s := IntervalSetOfPrefixes(PrefixFrom(0, 0))
	ps := s.Prefixes()
	if len(ps) != 1 || ps[0] != PrefixFrom(0, 0) {
		t.Fatalf("cover of everything = %v", ps)
	}
}

func TestPrefixesTopOfSpace(t *testing.T) {
	// Regression: covering up to 255.255.255.255 must not loop or wrap.
	s := NewIntervalSet(Interval{MustParseAddr("255.255.255.250"), MustParseAddr("255.255.255.255")})
	ps := s.Prefixes()
	if !IntervalSetOfPrefixes(ps...).Equal(s) {
		t.Fatalf("top-of-space cover = %v", ps)
	}
}

func TestPrefixesEmpty(t *testing.T) {
	var s IntervalSet
	if got := s.Prefixes(); len(got) != 0 {
		t.Fatalf("empty cover = %v", got)
	}
}

// TestPrefixesRoundTripProperty: for random sets, the cover reproduces the
// set exactly, every emitted prefix is valid, and the cover is no larger
// than the trivial per-/32 expansion bound (log-bounded per interval).
func TestPrefixesRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		s := randSet(rng)
		ps := s.Prefixes()
		for _, p := range ps {
			if !p.IsValid() {
				t.Fatalf("invalid prefix %v in cover", p)
			}
		}
		if !IntervalSetOfPrefixes(ps...).Equal(s) {
			t.Fatalf("cover mismatch for %v", s)
		}
		// Minimality bound: an inclusive interval needs at most
		// 2*32 prefixes.
		if len(ps) > 64*len(s.Intervals()) {
			t.Fatalf("cover of %d intervals uses %d prefixes", len(s.Intervals()), len(ps))
		}
	}
}

func TestPrefixesMergesAdjacentBlocks(t *testing.T) {
	// Two adjacent /25s normalize into one interval; the cover emits the
	// single /24, not the two halves.
	s := IntervalSetOfPrefixes(
		MustParsePrefix("192.0.2.0/25"),
		MustParsePrefix("192.0.2.128/25"),
	)
	ps := s.Prefixes()
	if len(ps) != 1 || ps[0] != MustParsePrefix("192.0.2.0/24") {
		t.Fatalf("cover = %v, want the aggregated /24", ps)
	}
}
