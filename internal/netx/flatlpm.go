package netx

import "sort"

// FlatLPM is the cache-dense longest-prefix-match table used on the
// classification hot path. Where LPM walks one pointer-indexed trie node
// per address bit (up to 32 dependent loads) and SortedLPM binary-searches
// one array per prefix length (up to 25 searches), FlatLPM spends its
// memory once at build time to make every lookup a bounded number of
// contiguous-array reads:
//
//	root16[addr>>16]  -> slice of the cut array owned by that /16 chunk
//	starts/cutEntry   -> disjoint address ranges, each mapped to the most
//	                     specific stored prefix covering it (or none)
//	chains/chainBits  -> per stored prefix, its full ancestor chain
//	                     (shortest first, itself last), precomputed
//
// A lookup is: one root16 load, a short binary search inside the chunk's
// cut span (the cuts of one /16 share a handful of cache lines), and an
// entry-array read. Matches — the covering-prefix walk the classifier's
// Figure 3 sequence needs — becomes a copy of the hit entry's precomputed
// chain instead of a closure call per trie level: the level-compression
// work moves entirely to build time.
//
// All slabs are flat slices of scalars; the structure holds no per-node
// pointers, so the GC never traverses it and lookups never chase one.
// FlatLPM is immutable and safe for concurrent use. It is property- and
// fuzz-tested against Trie/LPM and SortedLPM (flatlpm_test.go).
type FlatLPM struct {
	// starts[i] is the first address of cut i; cutEntry[i] is the entry
	// index of the most specific stored prefix covering that range, or -1.
	// starts is strictly increasing and starts[0] == 0, so the cut covering
	// any address always exists.
	starts   []uint32
	cutEntry []int32

	// root16[k] is the index of the first cut whose start lies at or above
	// chunk k<<16; root16 has 65537 elements so root16[k+1] bounds chunk k.
	// Tables with fewer than root16MinCuts cuts skip it (nil) and binary
	// search the whole cut array instead: the 256KB chunk index would cost
	// more cache than the handful of extra search steps saves, and the
	// per-member naive tables — hundreds of them per pipeline — are nearly
	// all this small.
	root16 []uint32

	// Per-entry slabs, indexed by the entry order (sorted by address, then
	// length). chainOff[e]..chainOff[e+1] bounds entry e's ancestor chain in
	// chains/chainBits/chainEnts: the values, prefix lengths, and entry
	// indices of every stored prefix covering e's own, shortest first,
	// ending with e itself. entAddr/entBits record each entry's own prefix,
	// so EntryOf can map a prefix back to its index.
	values    []uint32
	chainOff  []uint32
	chains    []uint32
	chainBits []uint8
	chainEnts []uint32
	entAddr   []uint32
	entBits   []uint8

	size int
}

// BuildFlatLPM compiles (prefix, value) pairs into a FlatLPM. Duplicate
// prefixes keep the value that appears last in the input, matching repeated
// Trie.Insert and BuildLPM. values == nil stores 1 for every prefix
// (membership-only tables).
func BuildFlatLPM(prefixes []Prefix, values []uint32) *FlatLPM {
	if values != nil && len(prefixes) != len(values) {
		panic("netx: BuildFlatLPM length mismatch")
	}
	f := &FlatLPM{}

	// Mask host bits first: Trie.Insert walks only the first Bits address
	// bits, so an unmasked input prefix behaves as its masked form there —
	// FlatLPM must agree.
	ps := make([]Prefix, len(prefixes))
	for i, p := range prefixes {
		ps[i] = PrefixFrom(p.Addr, p.Bits)
	}

	// Sort by (address, length) and drop duplicates, last input wins. The
	// sorted order guarantees every prefix's longest proper ancestor in the
	// set precedes it, which is what makes the single nesting-stack pass
	// below sufficient for both chains and cuts.
	order := make([]int32, len(ps))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := ps[order[a]], ps[order[b]]
		if pa.Addr != pb.Addr {
			return pa.Addr < pb.Addr
		}
		return pa.Bits < pb.Bits
	})
	ents := order[:0]
	for _, oi := range order {
		p := ps[oi]
		if n := len(ents); n > 0 && ps[ents[n-1]] == p {
			ents[n-1] = oi // duplicate: last insertion wins
			continue
		}
		ents = append(ents, oi)
	}
	n := len(ents)
	f.size = n

	valueOf := func(oi int32) uint32 {
		if values == nil {
			return 1
		}
		return values[oi]
	}

	// Pass 1: ancestor chains. stack holds the entry indices of the
	// prefixes covering the current position, outermost first; an entry's
	// chain is its parent's chain plus itself.
	f.values = make([]uint32, n)
	f.chainOff = make([]uint32, n+1)
	f.entAddr = make([]uint32, n)
	f.entBits = make([]uint8, n)
	depth := make([]uint32, n)
	stack := make([]int32, 0, 33)
	total := uint32(0)
	for e := 0; e < n; e++ {
		p := ps[ents[e]]
		for len(stack) > 0 && !ps[ents[stack[len(stack)-1]]].Contains(p.Addr) {
			stack = stack[:len(stack)-1]
		}
		d := uint32(1)
		if len(stack) > 0 {
			d = depth[stack[len(stack)-1]] + 1
		}
		depth[e] = d
		total += d
		stack = append(stack, int32(e))
		f.values[e] = valueOf(ents[e])
		f.entAddr[e] = uint32(p.Addr)
		f.entBits[e] = p.Bits
	}
	f.chains = make([]uint32, total)
	f.chainBits = make([]uint8, total)
	f.chainEnts = make([]uint32, total)
	off := uint32(0)
	stack = stack[:0]
	for e := 0; e < n; e++ {
		p := ps[ents[e]]
		for len(stack) > 0 && !ps[ents[stack[len(stack)-1]]].Contains(p.Addr) {
			stack = stack[:len(stack)-1]
		}
		f.chainOff[e] = off
		if len(stack) > 0 {
			parent := stack[len(stack)-1]
			po, pd := f.chainOff[parent], depth[parent]
			copy(f.chains[off:off+pd], f.chains[po:po+pd])
			copy(f.chainBits[off:off+pd], f.chainBits[po:po+pd])
			copy(f.chainEnts[off:off+pd], f.chainEnts[po:po+pd])
		}
		last := off + depth[e] - 1
		f.chains[last] = f.values[e]
		f.chainBits[last] = p.Bits
		f.chainEnts[last] = uint32(e)
		off += depth[e]
		stack = append(stack, int32(e))
	}
	f.chainOff[n] = off

	// Pass 2: flatten the nested prefixes into disjoint address ranges,
	// each labeled with the most specific covering entry. A cut is emitted
	// whenever the covering entry changes: at every prefix start and after
	// every prefix end. Equal-start emissions overwrite (the deeper prefix
	// starts exactly where its ancestor did, or several nested prefixes end
	// at the same address).
	f.starts = append(f.starts, 0)
	f.cutEntry = append(f.cutEntry, -1)
	cut := func(start uint32, entry int32) {
		if last := len(f.starts) - 1; f.starts[last] == start {
			f.cutEntry[last] = entry
			return
		}
		f.starts = append(f.starts, start)
		f.cutEntry = append(f.cutEntry, entry)
	}
	stack = stack[:0]
	closeTo := func(first uint32) {
		// Pop every stacked prefix ending before first; each pop returns
		// coverage to the next outer prefix (or none) one address past the
		// popped prefix's last. A prefix ending at 0xFFFFFFFF has no
		// successor address, so nothing reopens after it.
		for len(stack) > 0 {
			top := ps[ents[stack[len(stack)-1]]]
			lastAddr := uint32(top.Last())
			if top.Contains(Addr(first)) {
				break
			}
			stack = stack[:len(stack)-1]
			if lastAddr != ^uint32(0) {
				outer := int32(-1)
				if len(stack) > 0 {
					outer = stack[len(stack)-1]
				}
				cut(lastAddr+1, outer)
			}
		}
	}
	for e := 0; e < n; e++ {
		p := ps[ents[e]]
		closeTo(uint32(p.Addr))
		cut(uint32(p.Addr), int32(e))
		stack = append(stack, int32(e))
	}
	// Drain: nothing after the last prefix, so every stacked prefix ends.
	for len(stack) > 0 {
		top := ps[ents[stack[len(stack)-1]]]
		lastAddr := uint32(top.Last())
		stack = stack[:len(stack)-1]
		if lastAddr != ^uint32(0) {
			outer := int32(-1)
			if len(stack) > 0 {
				outer = stack[len(stack)-1]
			}
			cut(lastAddr+1, outer)
		}
	}

	// root16: one pass assigns every chunk the index of its first cut.
	if len(f.starts) >= root16MinCuts {
		f.root16 = make([]uint32, 1<<16+1)
		c := 0
		for k := 0; k < 1<<16; k++ {
			lo := uint32(k) << 16
			for c < len(f.starts) && f.starts[c] < lo {
				c++
			}
			f.root16[k] = uint32(c)
		}
		f.root16[1<<16] = uint32(len(f.starts))
	}
	return f
}

// root16MinCuts is the cut count below which BuildFlatLPM skips the /16
// chunk index. log2(512) = 9 search steps over one contiguous array beat a
// 256KB side table for every small-to-medium prefix set.
const root16MinCuts = 512

// Len returns the number of distinct stored prefixes.
func (f *FlatLPM) Len() int { return f.size }

// find returns the entry index of the most specific stored prefix covering
// a, or -1. One root16 load (when the table is big enough to carry the
// chunk index) bounds the binary search to the cuts of a's /16 chunk; the
// cut preceding the span (always present: starts[0] == 0) covers addresses
// before the span's first cut.
func (f *FlatLPM) find(a Addr) int32 {
	addr := uint32(a)
	lo, hi := uint32(0), uint32(len(f.starts))
	if f.root16 != nil {
		k := addr >> 16
		lo, hi = f.root16[k], f.root16[k+1]
	}
	for lo < hi {
		mid := (lo + hi) >> 1
		if f.starts[mid] <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return f.cutEntry[lo-1]
}

// TouchSpan primes the cache for a subsequent find(a): it reads a's root16
// chunk bounds and the middle of the chunk's cut span — the first probe the
// binary search will issue. Callers running batched lookups call it one
// address ahead so the span's miss latency overlaps the current lookup; the
// returned value must be folded into a sink the compiler cannot discard.
// A no-op (returns 0) on tables too small to carry the chunk index — their
// whole cut array is cache-resident anyway.
func (f *FlatLPM) TouchSpan(a Addr) uint32 {
	if f.root16 == nil {
		return 0
	}
	k := uint32(a) >> 16
	lo, hi := f.root16[k], f.root16[k+1]
	if lo >= hi {
		return lo
	}
	return f.starts[lo+(hi-lo)>>1]
}

// Lookup returns the value of the longest stored prefix covering a.
func (f *FlatLPM) Lookup(a Addr) (value uint32, ok bool) {
	e := f.find(a)
	if e < 0 {
		return 0, false
	}
	return f.values[e], true
}

// Contains reports whether any stored prefix covers a.
func (f *FlatLPM) Contains(a Addr) bool { return f.find(a) >= 0 }

// Matches calls fn for every stored prefix covering a, shortest first, with
// the prefix length and stored value — the closure-based walk, API-parity
// with LPM.Matches. Returning false stops the walk. Hot paths use
// MatchesAll instead, which copies the precomputed chain without a call per
// level.
func (f *FlatLPM) Matches(a Addr, fn func(bits uint8, value uint32) bool) {
	e := f.find(a)
	if e < 0 {
		return
	}
	for i := f.chainOff[e]; i < f.chainOff[e+1]; i++ {
		if !fn(f.chainBits[i], f.chains[i]) {
			return
		}
	}
}

// MatchesAll writes the values of every stored prefix covering a into out,
// shortest first, and returns how many were written (0 when nothing
// covers a). When the chain is longer than out, the first len(out)-1
// values are kept and the final slot holds the most specific match — the
// same truncation the classifier's fixed origin-slot scratch applies — so
// out[n-1] is always the longest-prefix match.
func (f *FlatLPM) MatchesAll(a Addr, out []uint32) int {
	e := f.find(a)
	if e < 0 || len(out) == 0 {
		return 0
	}
	lo, hi := f.chainOff[e], f.chainOff[e+1]
	n := int(hi - lo)
	if n <= len(out) {
		copy(out, f.chains[lo:hi])
		return n
	}
	n = len(out)
	copy(out[:n-1], f.chains[lo:])
	out[n-1] = f.chains[hi-1]
	return n
}

// FindChain returns the entry index of the most specific stored prefix
// covering a plus zero-copy views of its full ancestor chain: vals[i] is
// the stored value and ents[i] the entry index of the i-th covering
// prefix, shortest first, ending with the hit entry itself. entry < 0 (and
// nil slices) means nothing covers a. The returned slices alias internal
// slabs and must not be modified; unlike MatchesAll nothing is truncated,
// so callers that need every covering prefix (the classifier's per-member
// validity scan) see the whole chain at no copy cost.
func (f *FlatLPM) FindChain(a Addr) (entry int32, vals, ents []uint32) {
	e := f.find(a)
	if e < 0 {
		return -1, nil, nil
	}
	vals, ents = f.EntryChain(e)
	return e, vals, ents
}

// EntryChain returns zero-copy views of entry e's ancestor chain (values
// and entry indices, shortest first, ending with e itself). Callers use it
// to precompute per-entry facts — the classifier derives each entry's
// "covered by a bogon prefix" flag from whether its chain carries the
// bogon sentinel value.
func (f *FlatLPM) EntryChain(e int32) (vals, ents []uint32) {
	lo, hi := f.chainOff[e], f.chainOff[e+1]
	return f.chains[lo:hi:hi], f.chainEnts[lo:hi:hi]
}

// EntryOf returns the entry index of the stored prefix equal to p (after
// masking host bits, as BuildFlatLPM does), or -1 when p is not stored.
// Entry indexes are dense in [0, Len()) and order entries by (address,
// length), so callers can build per-entry side tables — the classifier
// marks each member's naively-valid entries in a bitset keyed by these
// indexes.
func (f *FlatLPM) EntryOf(p Prefix) int32 {
	p = PrefixFrom(p.Addr, p.Bits)
	addr := uint32(p.Addr)
	lo, hi := 0, len(f.entAddr)
	for lo < hi {
		mid := (lo + hi) >> 1
		if f.entAddr[mid] < addr || (f.entAddr[mid] == addr && f.entBits[mid] < p.Bits) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.entAddr) && f.entAddr[lo] == addr && f.entBits[lo] == p.Bits {
		return int32(lo)
	}
	return -1
}

// Value returns the stored value of entry e (an index returned by
// FindChain or EntryOf).
func (f *FlatLPM) Value(e int32) uint32 { return f.values[e] }
