package netx

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestFlatLPMBasic(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.1.2.0/24"),
	}
	f := BuildFlatLPM(ps, []uint32{8, 16, 24})
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	cases := []struct {
		addr string
		want uint32
		ok   bool
	}{
		{"10.1.2.3", 24, true},
		{"10.1.3.3", 16, true},
		{"10.2.0.1", 8, true},
		{"11.0.0.1", 0, false},
		{"255.255.255.255", 0, false},
	}
	for _, c := range cases {
		got, ok := f.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Lookup(%s) = %d,%v want %d,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
	var out [17]uint32
	if n := f.MatchesAll(MustParseAddr("10.1.2.3"), out[:]); n != 3 ||
		out[0] != 8 || out[1] != 16 || out[2] != 24 {
		t.Fatalf("MatchesAll chain = %v (n=%d), want [8 16 24]", out[:3], n)
	}
	if n := f.MatchesAll(MustParseAddr("11.0.0.1"), out[:]); n != 0 {
		t.Fatalf("MatchesAll on a miss = %d, want 0", n)
	}
}

func TestFlatLPMEmptyAndEdges(t *testing.T) {
	f := BuildFlatLPM(nil, nil)
	if f.Contains(MustParseAddr("1.2.3.4")) || f.Len() != 0 {
		t.Fatal("empty table matched")
	}
	// Default route alone covers everything, including both address-space ends.
	f = BuildFlatLPM([]Prefix{PrefixFrom(0, 0)}, []uint32{7})
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "128.0.0.1"} {
		if v, ok := f.Lookup(MustParseAddr(s)); !ok || v != 7 {
			t.Fatalf("default route at %s: %d %v", s, v, ok)
		}
	}
	// A /32 at the very top of the space (its Last()+1 would overflow).
	f = BuildFlatLPM([]Prefix{MustParsePrefix("255.255.255.255/32")}, []uint32{9})
	if v, ok := f.Lookup(MustParseAddr("255.255.255.255")); !ok || v != 9 {
		t.Fatalf("top /32: %d %v", v, ok)
	}
	if f.Contains(MustParseAddr("255.255.255.254")) {
		t.Fatal("top /32 overmatched")
	}
}

func TestFlatLPMDuplicateOverride(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	f := BuildFlatLPM([]Prefix{p, p}, []uint32{1, 2})
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
	if v, _ := f.Lookup(MustParseAddr("192.0.2.9")); v != 2 {
		t.Fatalf("duplicate override broken: %d", v)
	}
}

func TestFlatLPMTruncatedMatchesAll(t *testing.T) {
	// A 20-deep nesting chain against a 17-slot scratch: the first 16 slots
	// keep the shortest covers and the last slot must hold the most
	// specific — the classifier's origin-slot contract.
	var ps []Prefix
	var vs []uint32
	for bits := uint8(8); bits < 28; bits++ {
		ps = append(ps, PrefixFrom(MustParseAddr("10.0.0.0"), bits))
		vs = append(vs, uint32(bits))
	}
	f := BuildFlatLPM(ps, vs)
	var out [17]uint32
	n := f.MatchesAll(MustParseAddr("10.0.0.1"), out[:])
	if n != 17 {
		t.Fatalf("n = %d, want 17", n)
	}
	for i := 0; i < 16; i++ {
		if out[i] != uint32(8+i) {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], 8+i)
		}
	}
	if out[16] != 27 {
		t.Fatalf("out[16] = %d, want most specific 27", out[16])
	}
	if n := f.MatchesAll(MustParseAddr("10.0.0.1"), nil); n != 0 {
		t.Fatalf("zero-length scratch: n = %d", n)
	}
}

// flatPropertySets are the adversarial prefix-set generators shared by the
// three-way property test and the fuzz seed corpus: uniformly random tables,
// deep nesting chains (> the classifier's 17-slot scratch), /0 and /32
// extremes, duplicates, and dense same-/16 clusters (many cuts per root16
// chunk).
func flatPropertySets(rng *rand.Rand) [][]Prefix {
	var sets [][]Prefix

	uniform := make([]Prefix, 200)
	for i := range uniform {
		uniform[i] = PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(33)))
	}
	sets = append(sets, uniform)

	// One 33-deep chain (every length 0..32) plus scattered noise.
	chain := make([]Prefix, 0, 64)
	base := Addr(rng.Uint32())
	for bits := 0; bits <= 32; bits++ {
		chain = append(chain, PrefixFrom(base, uint8(bits)))
	}
	for i := 0; i < 20; i++ {
		chain = append(chain, PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(33))))
	}
	sets = append(sets, chain)

	// Duplicates with conflicting values (later wins), plus /0 and /32.
	dup := []Prefix{
		PrefixFrom(0, 0), PrefixFrom(0, 0),
		PrefixFrom(Addr(rng.Uint32()), 32),
	}
	for i := 0; i < 30; i++ {
		p := PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(33)))
		dup = append(dup, p, p)
	}
	sets = append(sets, dup)

	// Dense cluster inside one /16: stresses the per-chunk cut search.
	cluster := make([]Prefix, 0, 120)
	hi := Addr(rng.Uint32()) &^ 0xFFFF
	for i := 0; i < 120; i++ {
		cluster = append(cluster, PrefixFrom(hi|Addr(rng.Uint32()&0xFFFF), uint8(17+rng.Intn(16))))
	}
	sets = append(sets, cluster)
	return sets
}

// TestFlatLPMProperty is the three-way oracle: Trie/LPM, SortedLPM, and
// FlatLPM must agree on Lookup for every probe, and LPM.Matches and
// FlatLPM.Matches must yield the identical (bits, value) sequence.
func TestFlatLPMProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 12; iter++ {
		for _, ps := range flatPropertySets(rng) {
			vs := make([]uint32, len(ps))
			tr := NewTrie()
			for i := range ps {
				vs[i] = rng.Uint32()
				tr.Insert(ps[i], vs[i])
			}
			lpm := tr.Freeze()
			sorted := NewSortedLPM(ps, vs)
			flat := BuildFlatLPM(ps, vs)
			if flat.Len() != lpm.Len() || sorted.Len() != lpm.Len() {
				t.Fatalf("size mismatch: flat %d sorted %d trie %d",
					flat.Len(), sorted.Len(), lpm.Len())
			}
			for probe := 0; probe < 2000; probe++ {
				var a Addr
				if probe%2 == 0 && len(ps) > 0 {
					p := ps[rng.Intn(len(ps))]
					a = p.First() + Addr(rng.Uint64()%p.NumAddrs())
				} else {
					a = Addr(rng.Uint32())
				}
				v1, ok1 := lpm.Lookup(a)
				v2, ok2 := sorted.Lookup(a)
				v3, ok3 := flat.Lookup(a)
				if v1 != v2 || ok1 != ok2 || v1 != v3 || ok1 != ok3 {
					t.Fatalf("Lookup divergence at %v: trie %d,%v sorted %d,%v flat %d,%v",
						a, v1, ok1, v2, ok2, v3, ok3)
				}
				assertSameMatches(t, lpm, flat, a)
			}
			assertEntryOfRoundtrip(t, flat, ps)
		}
	}
}

type matchPair struct {
	bits  uint8
	value uint32
}

func collectMatches(m interface {
	Matches(Addr, func(uint8, uint32) bool)
}, a Addr) []matchPair {
	var out []matchPair
	m.Matches(a, func(bits uint8, value uint32) bool {
		out = append(out, matchPair{bits, value})
		return true
	})
	return out
}

func assertSameMatches(t *testing.T, lpm *LPM, flat *FlatLPM, a Addr) {
	t.Helper()
	want := collectMatches(lpm, a)
	got := collectMatches(flat, a)
	if len(want) != len(got) {
		t.Fatalf("Matches(%v): trie saw %d covers, flat %d", a, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Matches(%v)[%d]: trie %+v flat %+v", a, i, want[i], got[i])
		}
	}
	// MatchesAll must list the same values in the same (shortest-first)
	// order when the scratch is large enough.
	var buf [33]uint32
	n := flat.MatchesAll(a, buf[:])
	if n != len(want) {
		t.Fatalf("MatchesAll(%v) n = %d, want %d", a, n, len(want))
	}
	for i := range want {
		if buf[i] != want[i].value {
			t.Fatalf("MatchesAll(%v)[%d] = %d, want %d", a, i, buf[i], want[i].value)
		}
	}
	// Early-terminating Matches parity: stopping after the first cover.
	if len(want) > 0 {
		var first []matchPair
		flat.Matches(a, func(bits uint8, value uint32) bool {
			first = append(first, matchPair{bits, value})
			return false
		})
		if len(first) != 1 || first[0] != want[0] {
			t.Fatalf("Matches(%v) early stop saw %v, want [%+v]", a, first, want[0])
		}
	}
	// FindChain: the zero-copy view must carry the same values untruncated,
	// self-consistent entry indexes (Value(ents[i]) == vals[i]), and end at
	// the hit entry itself.
	e, vals, ents := flat.FindChain(a)
	if (e >= 0) != (len(want) > 0) {
		t.Fatalf("FindChain(%v) entry = %d with %d covers", a, e, len(want))
	}
	if len(vals) != len(want) || len(ents) != len(want) {
		t.Fatalf("FindChain(%v) chain lengths %d/%d, want %d", a, len(vals), len(ents), len(want))
	}
	for i := range want {
		if vals[i] != want[i].value {
			t.Fatalf("FindChain(%v) vals[%d] = %d, want %d", a, i, vals[i], want[i].value)
		}
		if flat.Value(int32(ents[i])) != vals[i] {
			t.Fatalf("FindChain(%v) ents[%d]=%d has value %d, want %d",
				a, i, ents[i], flat.Value(int32(ents[i])), vals[i])
		}
	}
	if e >= 0 && ents[len(ents)-1] != uint32(e) {
		t.Fatalf("FindChain(%v) last ent %d != entry %d", a, ents[len(ents)-1], e)
	}
}

// assertEntryOfRoundtrip checks the prefix → entry index mapping: every
// stored (masked) prefix resolves to an entry holding its own address,
// length, and winning value, and chains reported for its first address pass
// through it.
func assertEntryOfRoundtrip(t *testing.T, flat *FlatLPM, ps []Prefix) {
	t.Helper()
	for _, p := range ps {
		m := PrefixFrom(p.Addr, p.Bits)
		e := flat.EntryOf(p)
		if e < 0 {
			t.Fatalf("EntryOf(%v): stored prefix not found", m)
		}
		if flat.entAddr[e] != uint32(m.Addr) || flat.entBits[e] != m.Bits {
			t.Fatalf("EntryOf(%v) = %d holds %x/%d", m, e, flat.entAddr[e], flat.entBits[e])
		}
		if want, ok := flat.Lookup(m.First()); ok {
			_, _, ents := flat.FindChain(m.First())
			onChain := false
			for _, ce := range ents {
				if ce == uint32(e) {
					onChain = true
				}
			}
			if !onChain {
				t.Fatalf("EntryOf(%v) = %d not on its first address's chain (lpm=%d)", m, e, want)
			}
		}
	}
	// Unstored prefixes must miss.
	if e := flat.EntryOf(Prefix{Addr: 0x01020304, Bits: 32}); e >= 0 {
		for _, p := range ps {
			if PrefixFrom(p.Addr, p.Bits) == (Prefix{Addr: 0x01020304, Bits: 32}) {
				return
			}
		}
		t.Fatalf("EntryOf(unstored /32) = %d", e)
	}
}

// encodeFlatFuzzInput packs a prefix table and probe addresses into the
// FuzzFlatLPM wire format: count byte, then 5 bytes per prefix (addr,
// bits), then 4 bytes per probe.
func encodeFlatFuzzInput(ps []Prefix, probes []Addr) []byte {
	if len(ps) > 255 {
		ps = ps[:255]
	}
	out := []byte{byte(len(ps))}
	for _, p := range ps {
		out = binary.BigEndian.AppendUint32(out, uint32(p.Addr))
		out = append(out, p.Bits)
	}
	for _, a := range probes {
		out = binary.BigEndian.AppendUint32(out, uint32(a))
	}
	return out
}

// FuzzFlatLPM decodes an arbitrary prefix table + probe set and requires
// FlatLPM to agree with the reference Trie on every probe's Lookup and
// covering-prefix walk. Seeds come from the property-test generators.
func FuzzFlatLPM(f *testing.F) {
	rng := rand.New(rand.NewSource(41))
	for _, ps := range flatPropertySets(rng) {
		probes := make([]Addr, 16)
		for i := range probes {
			probes[i] = Addr(rng.Uint32())
		}
		f.Add(encodeFlatFuzzInput(ps, probes))
	}
	f.Add([]byte{0})
	f.Add(encodeFlatFuzzInput([]Prefix{PrefixFrom(0, 0)}, []Addr{0, ^Addr(0)}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := int(data[0])
		data = data[1:]
		if len(data) < n*5 {
			return
		}
		ps := make([]Prefix, n)
		vs := make([]uint32, n)
		tr := NewTrie()
		for i := 0; i < n; i++ {
			rec := data[i*5:]
			// Bits beyond 32 fold back into range rather than rejecting the
			// input, so every byte string exercises the builder. Raw
			// (unmasked) addresses are deliberate: BuildFlatLPM must mask
			// exactly as Trie.Insert's bit walk does.
			ps[i] = Prefix{Addr: Addr(binary.BigEndian.Uint32(rec)), Bits: rec[4] % 33}
			vs[i] = uint32(i + 1)
			tr.Insert(ps[i], vs[i])
		}
		data = data[n*5:]
		flat := BuildFlatLPM(ps, vs)
		lpm := tr.Freeze()
		if flat.Len() != lpm.Len() {
			t.Fatalf("size: flat %d trie %d", flat.Len(), lpm.Len())
		}
		probe := func(a Addr) {
			v1, ok1 := lpm.Lookup(a)
			v2, ok2 := flat.Lookup(a)
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("Lookup(%v): trie %d,%v flat %d,%v", a, v1, ok1, v2, ok2)
			}
			assertSameMatches(t, lpm, flat, a)
		}
		for i := 0; i+4 <= len(data) && i < 64*4; i += 4 {
			probe(Addr(binary.BigEndian.Uint32(data[i:])))
		}
		// Boundary probes around every stored prefix: first/last addresses
		// and their neighbours are where cut arithmetic goes wrong.
		for _, p := range ps {
			probe(p.First())
			probe(p.Last())
			probe(p.First() - 1)
			probe(p.Last() + 1)
		}
	})
}
