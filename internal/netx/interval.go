package netx

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is an inclusive IPv4 address range [Lo, Hi].
type Interval struct {
	Lo, Hi Addr
}

// IntervalOf returns the interval covered by a prefix.
func IntervalOf(p Prefix) Interval {
	return Interval{Lo: p.First(), Hi: p.Last()}
}

// Len returns the number of addresses in the interval.
func (iv Interval) Len() uint64 { return uint64(iv.Hi) - uint64(iv.Lo) + 1 }

// Contains reports whether the interval covers a.
func (iv Interval) Contains(a Addr) bool { return iv.Lo <= a && a <= iv.Hi }

func (iv Interval) String() string { return fmt.Sprintf("[%s, %s]", iv.Lo, iv.Hi) }

// IntervalSet is an immutable set of IPv4 addresses held as sorted,
// non-overlapping, non-adjacent inclusive intervals. The zero value is the
// empty set. Build one with NewIntervalSet or via set algebra.
type IntervalSet struct {
	ivs []Interval
}

// NewIntervalSet normalizes arbitrary intervals (overlapping, adjacent,
// unordered) into a canonical set.
func NewIntervalSet(ivs ...Interval) IntervalSet {
	if len(ivs) == 0 {
		return IntervalSet{}
	}
	sorted := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Lo > iv.Hi {
			iv.Lo, iv.Hi = iv.Hi, iv.Lo
		}
		sorted = append(sorted, iv)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		// Merge overlapping or adjacent intervals; guard Hi+1 overflow at
		// 255.255.255.255.
		if iv.Lo <= last.Hi || (last.Hi != ^Addr(0) && iv.Lo == last.Hi+1) {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return IntervalSet{ivs: out}
}

// IntervalSetOfPrefixes builds a set from prefixes.
func IntervalSetOfPrefixes(ps ...Prefix) IntervalSet {
	ivs := make([]Interval, len(ps))
	for i, p := range ps {
		ivs[i] = IntervalOf(p)
	}
	return NewIntervalSet(ivs...)
}

// IsEmpty reports whether the set contains no addresses.
func (s IntervalSet) IsEmpty() bool { return len(s.ivs) == 0 }

// Intervals returns the canonical intervals. The returned slice must not be
// modified.
func (s IntervalSet) Intervals() []Interval { return s.ivs }

// NumAddrs returns the number of addresses in the set.
func (s IntervalSet) NumAddrs() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// Slash24Equivalents returns the set size in /24 equivalents, rounded to the
// nearest integer, matching how the paper reports address-space sizes.
func (s IntervalSet) Slash24Equivalents() uint64 {
	return (s.NumAddrs() + 128) / 256
}

// Contains reports whether the set covers a, via binary search.
func (s IntervalSet) Contains(a Addr) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= a })
	return i < len(s.ivs) && s.ivs[i].Lo <= a
}

// Union returns the set union.
func (s IntervalSet) Union(t IntervalSet) IntervalSet {
	if s.IsEmpty() {
		return t
	}
	if t.IsEmpty() {
		return s
	}
	all := make([]Interval, 0, len(s.ivs)+len(t.ivs))
	all = append(all, s.ivs...)
	all = append(all, t.ivs...)
	return NewIntervalSet(all...)
}

// Intersect returns the set intersection.
func (s IntervalSet) Intersect(t IntervalSet) IntervalSet {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(t.ivs) {
		a, b := s.ivs[i], t.ivs[j]
		lo, hi := maxAddr(a.Lo, b.Lo), minAddr(a.Hi, b.Hi)
		if lo <= hi {
			out = append(out, Interval{lo, hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return IntervalSet{ivs: out}
}

// Subtract returns the addresses in s but not in t.
func (s IntervalSet) Subtract(t IntervalSet) IntervalSet {
	if s.IsEmpty() || t.IsEmpty() {
		return s
	}
	var out []Interval
	j := 0
	for _, iv := range s.ivs {
		lo := iv.Lo
		consumed := false
		for j < len(t.ivs) && t.ivs[j].Hi < lo {
			j++
		}
		for k := j; k < len(t.ivs) && t.ivs[k].Lo <= iv.Hi; k++ {
			cut := t.ivs[k]
			if cut.Lo > lo {
				out = append(out, Interval{lo, cut.Lo - 1})
			}
			if cut.Hi >= iv.Hi {
				consumed = true
				break
			}
			lo = cut.Hi + 1
		}
		if !consumed && lo <= iv.Hi {
			out = append(out, Interval{lo, iv.Hi})
		}
	}
	return IntervalSet{ivs: out}
}

// Equal reports whether two sets contain exactly the same addresses.
func (s IntervalSet) Equal(t IntervalSet) bool {
	if len(s.ivs) != len(t.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != t.ivs[i] {
			return false
		}
	}
	return true
}

// ContainsSet reports whether every address of t is also in s.
func (s IntervalSet) ContainsSet(t IntervalSet) bool {
	return t.Subtract(s).IsEmpty()
}

func (s IntervalSet) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func minAddr(a, b Addr) Addr {
	if a < b {
		return a
	}
	return b
}

func maxAddr(a, b Addr) Addr {
	if a > b {
		return a
	}
	return b
}
