package netx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func iv(lo, hi string) Interval {
	return Interval{MustParseAddr(lo), MustParseAddr(hi)}
}

func TestIntervalSetNormalize(t *testing.T) {
	s := NewIntervalSet(
		iv("10.0.0.0", "10.0.0.255"),
		iv("10.0.1.0", "10.0.1.255"),   // adjacent -> merged
		iv("10.0.0.128", "10.0.0.200"), // contained
		iv("192.0.2.0", "192.0.2.10"),
	)
	if got := len(s.Intervals()); got != 2 {
		t.Fatalf("normalized to %d intervals: %v", got, s)
	}
	if s.NumAddrs() != 512+11 {
		t.Fatalf("NumAddrs = %d", s.NumAddrs())
	}
}

func TestIntervalSetSwappedBounds(t *testing.T) {
	s := NewIntervalSet(Interval{MustParseAddr("10.0.0.9"), MustParseAddr("10.0.0.1")})
	if s.NumAddrs() != 9 {
		t.Fatalf("swapped bounds not fixed: %v", s)
	}
}

func TestIntervalSetContains(t *testing.T) {
	s := IntervalSetOfPrefixes(MustParsePrefix("10.0.0.0/8"), MustParsePrefix("192.0.2.0/24"))
	for _, c := range []struct {
		a  string
		in bool
	}{
		{"10.0.0.0", true}, {"10.255.255.255", true}, {"11.0.0.0", false},
		{"192.0.2.128", true}, {"192.0.3.0", false}, {"9.255.255.255", false},
	} {
		if got := s.Contains(MustParseAddr(c.a)); got != c.in {
			t.Errorf("Contains(%s) = %v", c.a, got)
		}
	}
}

func TestIntervalSetMaxAddressMerge(t *testing.T) {
	// Regression: Hi+1 must not overflow at 255.255.255.255.
	s := NewIntervalSet(
		iv("255.255.255.0", "255.255.255.255"),
		iv("255.255.254.0", "255.255.254.255"),
	)
	if s.NumAddrs() != 512 {
		t.Fatalf("NumAddrs = %d", s.NumAddrs())
	}
	if !s.Contains(MustParseAddr("255.255.255.255")) {
		t.Fatal("lost the last address")
	}
}

func TestIntervalSetAlgebra(t *testing.T) {
	a := IntervalSetOfPrefixes(MustParsePrefix("10.0.0.0/8"))
	b := IntervalSetOfPrefixes(MustParsePrefix("10.128.0.0/9"), MustParsePrefix("11.0.0.0/8"))

	u := a.Union(b)
	if u.NumAddrs() != 1<<24+1<<24 {
		t.Fatalf("Union size = %d", u.NumAddrs())
	}
	i := a.Intersect(b)
	if i.NumAddrs() != 1<<23 {
		t.Fatalf("Intersect size = %d", i.NumAddrs())
	}
	d := a.Subtract(b)
	if d.NumAddrs() != 1<<23 {
		t.Fatalf("Subtract size = %d", d.NumAddrs())
	}
	if !d.Equal(IntervalSetOfPrefixes(MustParsePrefix("10.0.0.0/9"))) {
		t.Fatalf("Subtract = %v", d)
	}
}

func TestIntervalSetSubtractSplits(t *testing.T) {
	a := NewIntervalSet(iv("10.0.0.0", "10.0.0.99"))
	hole := NewIntervalSet(iv("10.0.0.40", "10.0.0.59"))
	d := a.Subtract(hole)
	want := NewIntervalSet(iv("10.0.0.0", "10.0.0.39"), iv("10.0.0.60", "10.0.0.99"))
	if !d.Equal(want) {
		t.Fatalf("Subtract = %v want %v", d, want)
	}
}

func TestIntervalSetSubtractEverything(t *testing.T) {
	a := IntervalSetOfPrefixes(MustParsePrefix("10.0.0.0/8"))
	if !a.Subtract(a).IsEmpty() {
		t.Fatal("s - s must be empty")
	}
	all := IntervalSetOfPrefixes(PrefixFrom(0, 0))
	if !a.Subtract(all).IsEmpty() {
		t.Fatal("s - universe must be empty")
	}
}

func TestIntervalSetContainsSet(t *testing.T) {
	a := IntervalSetOfPrefixes(MustParsePrefix("10.0.0.0/8"))
	b := IntervalSetOfPrefixes(MustParsePrefix("10.3.0.0/16"))
	if !a.ContainsSet(b) {
		t.Fatal("superset check failed")
	}
	if b.ContainsSet(a) {
		t.Fatal("subset reported as superset")
	}
}

func TestSlash24Equivalents(t *testing.T) {
	s := IntervalSetOfPrefixes(MustParsePrefix("10.0.0.0/8"))
	if got := s.Slash24Equivalents(); got != 1<<16 {
		t.Fatalf("/8 = %d /24s", got)
	}
	half := NewIntervalSet(iv("10.0.0.0", "10.0.0.127"))
	if got := half.Slash24Equivalents(); got != 1 {
		t.Fatalf("128 addrs rounds to %d /24s, want 1", got)
	}
	tiny := NewIntervalSet(iv("10.0.0.0", "10.0.0.10"))
	if got := tiny.Slash24Equivalents(); got != 0 {
		t.Fatalf("11 addrs rounds to %d /24s, want 0", got)
	}
}

// randSet builds a small random set for property tests.
func randSet(rng *rand.Rand) IntervalSet {
	n := rng.Intn(6)
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := Addr(rng.Uint32() % 4096)
		hi := lo + Addr(rng.Uint32()%512)
		ivs[i] = Interval{lo, hi}
	}
	return NewIntervalSet(ivs...)
}

func TestIntervalSetAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		a, b := randSet(rng), randSet(rng)
		u, x, d := a.Union(b), a.Intersect(b), a.Subtract(b)
		// |A∪B| = |A| + |B| - |A∩B|
		if u.NumAddrs() != a.NumAddrs()+b.NumAddrs()-x.NumAddrs() {
			t.Fatalf("inclusion-exclusion violated: %v %v", a, b)
		}
		// |A\B| = |A| - |A∩B|
		if d.NumAddrs() != a.NumAddrs()-x.NumAddrs() {
			t.Fatalf("subtract size violated: %v %v", a, b)
		}
		// Membership agreement on probes.
		for i := 0; i < 100; i++ {
			p := Addr(rng.Uint32() % 8192)
			inA, inB := a.Contains(p), b.Contains(p)
			if u.Contains(p) != (inA || inB) {
				t.Fatalf("union membership wrong at %v", p)
			}
			if x.Contains(p) != (inA && inB) {
				t.Fatalf("intersect membership wrong at %v", p)
			}
			if d.Contains(p) != (inA && !inB) {
				t.Fatalf("subtract membership wrong at %v", p)
			}
		}
		// Canonical form: sorted, non-overlapping, non-adjacent.
		for _, s := range []IntervalSet{u, x, d} {
			ivs := s.Intervals()
			for i := 1; i < len(ivs); i++ {
				if ivs[i].Lo <= ivs[i-1].Hi || (ivs[i-1].Hi != ^Addr(0) && ivs[i].Lo == ivs[i-1].Hi+1) {
					t.Fatalf("non-canonical result: %v", s)
				}
			}
		}
	}
}

func TestIntervalSetUnionCommutes(t *testing.T) {
	f := func(a1, a2, b1, b2 uint32) bool {
		a := NewIntervalSet(Interval{Addr(a1), Addr(a2)})
		b := NewIntervalSet(Interval{Addr(b1), Addr(b2)})
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
