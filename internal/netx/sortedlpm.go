package netx

import "sort"

// SortedLPM is an immutable longest-prefix-match table implemented as one
// sorted array per prefix length, probed longest-first with binary search.
// It is the classic alternative to a radix trie: denser memory, no pointer
// chasing, but up to 25 binary searches per miss. The repository keeps it
// as the ablation partner of LPM (see bench_test.go); both structures are
// property-tested against each other.
type SortedLPM struct {
	// byLen[bits] holds the network addresses of all /bits prefixes,
	// sorted; values[bits] holds the corresponding payloads.
	byLen  [33][]uint32
	values [33][]uint32
	// lens lists the populated prefix lengths, longest first.
	lens []uint8
	size int
}

// NewSortedLPM builds the table from (prefix, value) pairs. Later
// duplicates of the same prefix override earlier ones, matching
// Trie.Insert semantics.
func NewSortedLPM(prefixes []Prefix, values []uint32) *SortedLPM {
	if len(prefixes) != len(values) {
		panic("netx: NewSortedLPM length mismatch")
	}
	type entry struct {
		addr  uint32
		value uint32
		order int
	}
	byLen := make(map[uint8][]entry)
	for i, p := range prefixes {
		byLen[p.Bits] = append(byLen[p.Bits], entry{uint32(p.Addr), values[i], i})
	}
	s := &SortedLPM{}
	for bits := 32; bits >= 0; bits-- {
		es := byLen[uint8(bits)]
		if len(es) == 0 {
			continue
		}
		// Sort by address; for duplicates the last insertion wins.
		sort.Slice(es, func(a, b int) bool {
			if es[a].addr != es[b].addr {
				return es[a].addr < es[b].addr
			}
			return es[a].order < es[b].order
		})
		addrs := make([]uint32, 0, len(es))
		vals := make([]uint32, 0, len(es))
		for _, e := range es {
			if n := len(addrs); n > 0 && addrs[n-1] == e.addr {
				vals[n-1] = e.value // duplicate: override
				continue
			}
			addrs = append(addrs, e.addr)
			vals = append(vals, e.value)
		}
		s.byLen[bits] = addrs
		s.values[bits] = vals
		s.lens = append(s.lens, uint8(bits))
		s.size += len(addrs)
	}
	return s
}

// Len returns the number of distinct stored prefixes.
func (s *SortedLPM) Len() int { return s.size }

// Lookup returns the value of the longest stored prefix covering a.
func (s *SortedLPM) Lookup(a Addr) (value uint32, ok bool) {
	addr := uint32(a)
	for _, bits := range s.lens {
		net := addr & maskOf(bits)
		table := s.byLen[bits]
		// Manual lower-bound search: sort.Search would pay an indirect
		// closure call per probe, and this structure is the ablation
		// partner FlatLPM is benchmarked against — it should price the
		// per-level binary searches, not call overhead.
		lo, hi := 0, len(table)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if table[mid] < net {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(table) && table[lo] == net {
			return s.values[bits][lo], true
		}
	}
	return 0, false
}

// Contains reports whether any stored prefix covers a.
func (s *SortedLPM) Contains(a Addr) bool {
	_, ok := s.Lookup(a)
	return ok
}
