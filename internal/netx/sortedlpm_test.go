package netx

import (
	"math/rand"
	"testing"
)

func TestSortedLPMBasic(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.1.2.0/24"),
	}
	s := NewSortedLPM(ps, []uint32{8, 16, 24})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	cases := []struct {
		addr string
		want uint32
		ok   bool
	}{
		{"10.1.2.3", 24, true},
		{"10.1.3.3", 16, true},
		{"10.2.0.1", 8, true},
		{"11.0.0.1", 0, false},
	}
	for _, c := range cases {
		got, ok := s.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Lookup(%s) = %d,%v want %d,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestSortedLPMDuplicateOverride(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	s := NewSortedLPM([]Prefix{p, p}, []uint32{1, 2})
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, _ := s.Lookup(MustParseAddr("192.0.2.9")); v != 2 {
		t.Fatalf("duplicate override broken: %d", v)
	}
}

func TestSortedLPMDefaultRoute(t *testing.T) {
	s := NewSortedLPM([]Prefix{PrefixFrom(0, 0)}, []uint32{7})
	if v, ok := s.Lookup(MustParseAddr("203.0.113.1")); !ok || v != 7 {
		t.Fatalf("default route: %d %v", v, ok)
	}
}

func TestSortedLPMEmpty(t *testing.T) {
	s := NewSortedLPM(nil, nil)
	if s.Contains(MustParseAddr("1.2.3.4")) {
		t.Fatal("empty table matched")
	}
}

func TestSortedLPMPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not rejected")
		}
	}()
	NewSortedLPM([]Prefix{PrefixFrom(0, 0)}, nil)
}

// TestSortedLPMMatchesTrie cross-checks the two LPM implementations on
// random tables and probes — each validates the other.
func TestSortedLPMMatchesTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		n := rng.Intn(300) + 1
		ps := make([]Prefix, n)
		vs := make([]uint32, n)
		tr := NewTrie()
		for i := 0; i < n; i++ {
			ps[i] = PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(33)))
			vs[i] = rng.Uint32()
			tr.Insert(ps[i], vs[i])
		}
		sorted := NewSortedLPM(ps, vs)
		lpm := tr.Freeze()
		if sorted.Len() != lpm.Len() {
			t.Fatalf("size mismatch: sorted %d vs trie %d", sorted.Len(), lpm.Len())
		}
		for probe := 0; probe < 3000; probe++ {
			var a Addr
			if probe%2 == 0 {
				p := ps[rng.Intn(n)]
				a = p.First() + Addr(rng.Uint64()%p.NumAddrs())
			} else {
				a = Addr(rng.Uint32())
			}
			v1, ok1 := sorted.Lookup(a)
			v2, ok2 := lpm.Lookup(a)
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("divergence at %v: sorted %d,%v trie %d,%v", a, v1, ok1, v2, ok2)
			}
		}
	}
}
