package netx

// Trie is a binary radix trie over IPv4 prefixes supporting insert and
// longest-prefix match. Values are 32-bit payloads (typically an AS number
// or a table index). It is the mutable builder; Freeze it into an LPM for
// the read-only, cache-friendly structure used on the classification path.
//
// The trie is path-compressed lazily: nodes exist only along inserted
// prefixes, one level per bit. For Internet-scale tables (~700K prefixes)
// this stays well under 100 MB and lookups touch at most 32 nodes.
type Trie struct {
	nodes []trieNode // nodes[0] is the root
	size  int
}

type trieNode struct {
	child [2]int32 // index into nodes, 0 means nil (root is never a child)
	value uint32
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie() *Trie {
	return &Trie{nodes: make([]trieNode, 1, 1024)}
}

// Len returns the number of distinct prefixes stored.
func (t *Trie) Len() int { return t.size }

// Insert stores value for prefix, replacing any previous value.
func (t *Trie) Insert(p Prefix, value uint32) {
	cur := int32(0)
	addr := uint32(p.Addr)
	for depth := uint8(0); depth < p.Bits; depth++ {
		bit := (addr >> (31 - depth)) & 1
		next := t.nodes[cur].child[bit]
		if next == 0 {
			t.nodes = append(t.nodes, trieNode{})
			next = int32(len(t.nodes) - 1)
			t.nodes[cur].child[bit] = next
		}
		cur = next
	}
	if !t.nodes[cur].set {
		t.size++
	}
	t.nodes[cur].value = value
	t.nodes[cur].set = true
}

// Lookup returns the value of the longest stored prefix covering a.
func (t *Trie) Lookup(a Addr) (value uint32, ok bool) {
	cur := int32(0)
	addr := uint32(a)
	if t.nodes[0].set {
		value, ok = t.nodes[0].value, true
	}
	for depth := 0; depth < 32; depth++ {
		bit := (addr >> (31 - depth)) & 1
		next := t.nodes[cur].child[bit]
		if next == 0 {
			break
		}
		cur = next
		if t.nodes[cur].set {
			value, ok = t.nodes[cur].value, true
		}
	}
	return value, ok
}

// LookupPrefix returns the value and the matched prefix itself.
func (t *Trie) LookupPrefix(a Addr) (p Prefix, value uint32, ok bool) {
	cur := int32(0)
	addr := uint32(a)
	if t.nodes[0].set {
		p, value, ok = Prefix{}, t.nodes[0].value, true
	}
	for depth := uint8(0); depth < 32; depth++ {
		bit := (addr >> (31 - depth)) & 1
		next := t.nodes[cur].child[bit]
		if next == 0 {
			break
		}
		cur = next
		if t.nodes[cur].set {
			p = PrefixFrom(a, depth+1)
			value = t.nodes[cur].value
			ok = true
		}
	}
	return p, value, ok
}

// Get returns the value stored at exactly prefix p.
func (t *Trie) Get(p Prefix) (value uint32, ok bool) {
	cur := int32(0)
	addr := uint32(p.Addr)
	for depth := uint8(0); depth < p.Bits; depth++ {
		bit := (addr >> (31 - depth)) & 1
		next := t.nodes[cur].child[bit]
		if next == 0 {
			return 0, false
		}
		cur = next
	}
	return t.nodes[cur].value, t.nodes[cur].set
}

// Walk visits every stored prefix in address order, shortest-first within a
// shared network address. Returning false from fn stops the walk.
func (t *Trie) Walk(fn func(p Prefix, value uint32) bool) {
	t.walk(0, 0, 0, fn)
}

func (t *Trie) walk(node int32, addr uint32, depth uint8, fn func(Prefix, uint32) bool) bool {
	n := &t.nodes[node]
	if n.set {
		if !fn(Prefix{Addr: Addr(addr), Bits: depth}, n.value) {
			return false
		}
	}
	for bit := uint32(0); bit < 2; bit++ {
		c := n.child[bit]
		if c == 0 {
			continue
		}
		next := addr | bit<<(31-depth)
		if !t.walk(c, next, depth+1, fn) {
			return false
		}
	}
	return true
}

// Freeze converts the trie into an immutable LPM table.
func (t *Trie) Freeze() *LPM {
	nodes := make([]trieNode, len(t.nodes))
	copy(nodes, t.nodes)
	return &LPM{nodes: nodes, size: t.size}
}

// LPM is an immutable longest-prefix-match table produced by Trie.Freeze.
// It is safe for concurrent use.
type LPM struct {
	nodes []trieNode
	size  int
}

// Len returns the number of stored prefixes.
func (l *LPM) Len() int { return l.size }

// Lookup returns the value of the longest stored prefix covering a.
func (l *LPM) Lookup(a Addr) (value uint32, ok bool) {
	cur := int32(0)
	addr := uint32(a)
	if l.nodes[0].set {
		value, ok = l.nodes[0].value, true
	}
	for depth := 0; depth < 32; depth++ {
		bit := (addr >> (31 - depth)) & 1
		next := l.nodes[cur].child[bit]
		if next == 0 {
			break
		}
		cur = next
		if l.nodes[cur].set {
			value, ok = l.nodes[cur].value, true
		}
	}
	return value, ok
}

// Contains reports whether any stored prefix covers a.
func (l *LPM) Contains(a Addr) bool {
	_, ok := l.Lookup(a)
	return ok
}

// Transform returns a copy of the table with every stored value replaced
// by fn(value); prefixes and structure are untouched. fn is called once
// per stored prefix. This is the compile-time hook for re-keying a table —
// e.g. swapping AS numbers for dense graph indices — so the per-lookup
// consumer pays an array index instead of a map hit.
func (l *LPM) Transform(fn func(uint32) uint32) *LPM {
	nodes := make([]trieNode, len(l.nodes))
	copy(nodes, l.nodes)
	for i := range nodes {
		if nodes[i].set {
			nodes[i].value = fn(nodes[i].value)
		}
	}
	return &LPM{nodes: nodes, size: l.size}
}

// Matches calls fn for every stored prefix covering a, shortest first,
// with the prefix length and stored value. Returning false stops the walk.
func (l *LPM) Matches(a Addr, fn func(bits uint8, value uint32) bool) {
	cur := int32(0)
	addr := uint32(a)
	if l.nodes[0].set {
		if !fn(0, l.nodes[0].value) {
			return
		}
	}
	for depth := 0; depth < 32; depth++ {
		bit := (addr >> (31 - depth)) & 1
		next := l.nodes[cur].child[bit]
		if next == 0 {
			return
		}
		cur = next
		if l.nodes[cur].set {
			if !fn(uint8(depth+1), l.nodes[cur].value) {
				return
			}
		}
	}
}
