package netx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrieEmpty(t *testing.T) {
	tr := NewTrie()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Lookup(MustParseAddr("1.2.3.4")); ok {
		t.Fatal("empty trie matched")
	}
}

func TestTrieBasicLPM(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 16)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 24)

	cases := []struct {
		addr string
		want uint32
		ok   bool
	}{
		{"10.1.2.3", 24, true},
		{"10.1.3.3", 16, true},
		{"10.2.0.1", 8, true},
		{"11.0.0.1", 0, false},
		{"10.1.2.255", 24, true},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Lookup(%s) = %d,%v want %d,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tr := NewTrie()
	tr.Insert(PrefixFrom(0, 0), 99)
	tr.Insert(MustParsePrefix("192.0.2.0/24"), 1)
	if v, ok := tr.Lookup(MustParseAddr("8.8.8.8")); !ok || v != 99 {
		t.Fatalf("default route: %d %v", v, ok)
	}
	if v, ok := tr.Lookup(MustParseAddr("192.0.2.1")); !ok || v != 1 {
		t.Fatalf("specific over default: %d %v", v, ok)
	}
}

func TestTrieReplace(t *testing.T) {
	tr := NewTrie()
	p := MustParsePrefix("203.0.113.0/24")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	if v, _ := tr.Get(p); v != 2 {
		t.Fatalf("Get = %d", v)
	}
}

func TestTrieGetExact(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/16")); ok {
		t.Fatal("Get matched a non-inserted more-specific")
	}
	if v, ok := tr.Get(MustParsePrefix("10.0.0.0/8")); !ok || v != 8 {
		t.Fatalf("Get exact = %d %v", v, ok)
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.64.0.0/10"), 10)
	p, v, ok := tr.LookupPrefix(MustParseAddr("10.65.1.2"))
	if !ok || v != 10 || p != MustParsePrefix("10.64.0.0/10") {
		t.Fatalf("LookupPrefix = %v %d %v", p, v, ok)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	tr := NewTrie()
	ins := []string{"192.0.2.0/24", "10.0.0.0/8", "10.0.0.0/16", "172.16.0.0/12"}
	for i, s := range ins {
		tr.Insert(MustParsePrefix(s), uint32(i))
	}
	var got []Prefix
	tr.Walk(func(p Prefix, _ uint32) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(ins) {
		t.Fatalf("Walk visited %d prefixes", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Fatalf("Walk order violated: %v before %v", got[i-1], got[i])
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 0)
	tr.Insert(MustParsePrefix("11.0.0.0/8"), 1)
	n := 0
	tr.Walk(func(Prefix, uint32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Walk did not stop early: %d visits", n)
	}
}

// refLPM is a brute-force longest-prefix-match used as the property-test
// oracle.
type refLPM struct {
	ps []Prefix
	vs []uint32
}

func (r *refLPM) lookup(a Addr) (uint32, bool) {
	best := -1
	for i, p := range r.ps {
		if p.Contains(a) && (best == -1 || p.Bits > r.ps[best].Bits) {
			best = i
		}
	}
	if best == -1 {
		return 0, false
	}
	return r.vs[best], true
}

func TestTrieMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		tr := NewTrie()
		ref := &refLPM{}
		seen := map[Prefix]int{}
		for i := 0; i < 200; i++ {
			p := PrefixFrom(Addr(rng.Uint32()), uint8(rng.Intn(25)+8))
			v := rng.Uint32()
			tr.Insert(p, v)
			if j, ok := seen[p]; ok {
				ref.vs[j] = v
			} else {
				seen[p] = len(ref.ps)
				ref.ps = append(ref.ps, p)
				ref.vs = append(ref.vs, v)
			}
		}
		lpm := tr.Freeze()
		for i := 0; i < 2000; i++ {
			var a Addr
			if i%2 == 0 && len(ref.ps) > 0 {
				// Bias probes into stored prefixes.
				p := ref.ps[rng.Intn(len(ref.ps))]
				a = p.First() + Addr(rng.Uint64()%p.NumAddrs())
			} else {
				a = Addr(rng.Uint32())
			}
			wantV, wantOK := ref.lookup(a)
			gotV, gotOK := tr.Lookup(a)
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("Trie.Lookup(%v) = %d,%v want %d,%v", a, gotV, gotOK, wantV, wantOK)
			}
			gotV, gotOK = lpm.Lookup(a)
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("LPM.Lookup(%v) = %d,%v want %d,%v", a, gotV, gotOK, wantV, wantOK)
			}
		}
	}
}

func TestTrieFreezeIndependent(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	lpm := tr.Freeze()
	tr.Insert(MustParsePrefix("11.0.0.0/8"), 2)
	if lpm.Contains(MustParseAddr("11.1.1.1")) {
		t.Fatal("Freeze is not a snapshot")
	}
	if lpm.Len() != 1 {
		t.Fatalf("LPM.Len = %d", lpm.Len())
	}
}

func TestTrieQuickInsertedAlwaysFound(t *testing.T) {
	f := func(addr uint32, bits uint8, val uint32) bool {
		p := PrefixFrom(Addr(addr), bits%33)
		tr := NewTrie()
		tr.Insert(p, val)
		v, ok := tr.Lookup(p.First())
		return ok && v == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLPMMatches(t *testing.T) {
	tr := NewTrie()
	tr.Insert(PrefixFrom(0, 0), 0)
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 16)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 24)
	lpm := tr.Freeze()

	var got []uint32
	lpm.Matches(MustParseAddr("10.1.2.3"), func(bits uint8, v uint32) bool {
		got = append(got, v)
		return true
	})
	want := []uint32{0, 8, 16, 24} // shortest first
	if len(got) != len(want) {
		t.Fatalf("Matches = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Matches order = %v", got)
		}
	}

	// Early stop.
	n := 0
	lpm.Matches(MustParseAddr("10.1.2.3"), func(uint8, uint32) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}

	// 11.0.0.1 is covered only by the default route.
	got = got[:0]
	lpm.Matches(MustParseAddr("11.0.0.1"), func(bits uint8, v uint32) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Matches(11.0.0.1) = %v", got)
	}
	// 10.2.x is covered by the default route and the /8.
	got = got[:0]
	lpm.Matches(MustParseAddr("10.2.0.1"), func(bits uint8, v uint32) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[1] != 8 {
		t.Fatalf("Matches(10.2.0.1) = %v", got)
	}
}

// TestLPMTransform: value re-keying copies the table, applies fn once per
// stored prefix, and leaves the original untouched — the compile-time hook
// for swapping AS numbers out for dense table indices.
func TestLPMTransform(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 100)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 200)
	tr.Insert(MustParsePrefix("192.168.0.0/16"), 100)
	lpm := tr.Freeze()

	calls := 0
	mapped := lpm.Transform(func(v uint32) uint32 {
		calls++
		return v + 1
	})
	if calls != 3 {
		t.Fatalf("fn called %d times, want once per stored prefix (3)", calls)
	}
	if mapped.Len() != lpm.Len() {
		t.Fatalf("Len = %d, want %d", mapped.Len(), lpm.Len())
	}
	if v, ok := mapped.Lookup(MustParseAddr("10.1.2.3")); !ok || v != 201 {
		t.Fatalf("mapped most-specific = (%d, %v), want 201", v, ok)
	}
	if v, ok := mapped.Lookup(MustParseAddr("10.2.0.1")); !ok || v != 101 {
		t.Fatalf("mapped less-specific = (%d, %v), want 101", v, ok)
	}
	if _, ok := mapped.Lookup(MustParseAddr("11.0.0.1")); ok {
		t.Fatal("Transform invented a prefix")
	}
	// The original is untouched.
	if v, ok := lpm.Lookup(MustParseAddr("10.1.2.3")); !ok || v != 200 {
		t.Fatalf("original mutated: (%d, %v), want 200", v, ok)
	}
}
