package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, samples by label key,
// histograms as cumulative _bucket/_sum/_count series. Func-backed metrics
// are sampled here, outside the registry lock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.samples {
			var err error
			if f.kind == KindHistogram {
				err = writeHistogram(w, f.name, s)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels), formatValue(s.value()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *sample) error {
	snap := s.histSnapshot()
	var cum uint64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		labels := append(append([]Label(nil), s.labels...), Label{"le", formatValue(bound)})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(labels), cum); err != nil {
			return err
		}
	}
	infLabels := append(append([]Label(nil), s.labels...), Label{"le", "+Inf"})
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(infLabels), snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(s.labels), formatValue(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.labels), snap.Count)
	return err
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// JSONSample is one metric instance in the JSON exposition.
type JSONSample struct {
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     *float64           `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// JSONFamily is one metric family in the JSON exposition.
type JSONFamily struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Kind    string       `json:"kind"`
	Samples []JSONSample `json:"samples"`
}

// Export returns the registry's current state as JSON-ready families —
// the machine-readable twin of the Prometheus text format, and the
// programmatic scrape API (benchmarks read histogram summaries from it).
func (r *Registry) Export() []JSONFamily {
	fams := r.snapshotFamilies()
	out := make([]JSONFamily, 0, len(fams))
	for _, f := range fams {
		jf := JSONFamily{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range f.samples {
			js := JSONSample{}
			if len(s.labels) > 0 {
				js.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					js.Labels[l.Name] = l.Value
				}
			}
			if f.kind == KindHistogram {
				snap := s.histSnapshot()
				js.Histogram = &snap
			} else {
				v := s.value()
				js.Value = &v
			}
			jf.Samples = append(jf.Samples, js)
		}
		out = append(out, jf)
	}
	return out
}

// WriteJSON renders Export as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}

// FindHistogram returns a snapshot of the first histogram sample under
// name whose labels include every given label, or false if none exists.
func (r *Registry) FindHistogram(name string, labels ...Label) (HistogramSnapshot, bool) {
	for _, f := range r.snapshotFamilies() {
		if f.name != name || f.kind != KindHistogram {
			continue
		}
	next:
		for _, s := range f.samples {
			for _, want := range labels {
				found := false
				for _, have := range s.labels {
					if have == want {
						found = true
						break
					}
				}
				if !found {
					continue next
				}
			}
			return s.histSnapshot(), true
		}
	}
	return HistogramSnapshot{}, false
}
