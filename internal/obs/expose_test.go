package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// families sorted by name, samples by label key, histograms as cumulative
// buckets with an explicit +Inf, integer values without a decimal point.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "Sorted last.").Add(2)
	r.Counter("aa_flows_total", "Flows by class.", Label{Name: "class", Value: "valid"}).Add(10)
	r.Counter("aa_flows_total", "Flows by class.", Label{Name: "class", Value: "bogon"}).Add(3)
	r.Gauge("mm_depth", "Queue depth.").Set(1.5)
	h := r.Histogram("hh_lat_seconds", "Latency.", []float64{0.1, 0.2})
	h.Observe(0.05)
	h.Observe(0.15)
	h.Observe(0.15)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_flows_total Flows by class.
# TYPE aa_flows_total counter
aa_flows_total{class="bogon"} 3
aa_flows_total{class="valid"} 10
# HELP hh_lat_seconds Latency.
# TYPE hh_lat_seconds histogram
hh_lat_seconds_bucket{le="0.1"} 1
hh_lat_seconds_bucket{le="0.2"} 3
hh_lat_seconds_bucket{le="+Inf"} 4
hh_lat_seconds_sum 9.35
hh_lat_seconds_count 4
# HELP mm_depth Queue depth.
# TYPE mm_depth gauge
mm_depth 1.5
# HELP zz_last_total Sorted last.
# TYPE zz_last_total counter
zz_last_total 2
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "E.", Label{Name: "path", Value: "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("label escaping:\n%s", sb.String())
	}
}

func TestExportJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "C.", Label{Name: "k", Value: "v"}).Add(5)
	r.Histogram("h_seconds", "H.", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var fams []JSONFamily
	if err := json.Unmarshal([]byte(sb.String()), &fams); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("families: got %d, want 2", len(fams))
	}
	if fams[0].Name != "c_total" || *fams[0].Samples[0].Value != 5 ||
		fams[0].Samples[0].Labels["k"] != "v" {
		t.Fatalf("counter family: %+v", fams[0])
	}
	if fams[1].Samples[0].Histogram.Count != 1 {
		t.Fatalf("histogram family: %+v", fams[1])
	}
}

func TestFindHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", "L.", []float64{1}, Label{Name: "w", Value: "0"}).Observe(0.5)
	r.Histogram("lat", "L.", []float64{1}, Label{Name: "w", Value: "1"})
	if snap, ok := r.FindHistogram("lat", Label{Name: "w", Value: "0"}); !ok || snap.Count != 1 {
		t.Fatalf("labeled lookup: ok=%v snap=%+v", ok, snap)
	}
	if _, ok := r.FindHistogram("lat", Label{Name: "w", Value: "9"}); ok {
		t.Fatal("lookup with unknown label must miss")
	}
	if _, ok := r.FindHistogram("nope"); ok {
		t.Fatal("unknown name must miss")
	}
}
