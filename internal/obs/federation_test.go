package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The observability-plane primitives federation builds on: func-backed
// histograms, sample unregistration, incremental journal reads with gap
// detection, forwarded events, and published JSON status pages.

func TestHistogramFuncExposition(t *testing.T) {
	r := NewRegistry()
	snap := HistogramSnapshot{
		Bounds: []float64{0.1, 1},
		Counts: []uint64{2, 1, 0},
		Count:  3,
		Sum:    0.7,
	}
	r.HistogramFunc("fed_seconds", "Federated histogram.",
		func() HistogramSnapshot { return snap },
		Label{Name: "worker", Value: "w1"})

	got, ok := r.FindHistogram("fed_seconds", Label{Name: "worker", Value: "w1"})
	if !ok || got.Count != 3 || got.Sum != 0.7 || len(got.Bounds) != 2 {
		t.Fatalf("FindHistogram through func: %+v ok=%v", got, ok)
	}

	var text strings.Builder
	if err := r.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fed_seconds_bucket{worker="w1",le="0.1"} 2`,
		`fed_seconds_count{worker="w1"} 3`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, text.String())
		}
	}
}

func TestUnregisterDropsSample(t *testing.T) {
	r := NewRegistry()
	w1 := Label{Name: "worker", Value: "w1"}
	w2 := Label{Name: "worker", Value: "w2"}
	r.CounterFunc("fleet_total", "Fleet counter.", func() uint64 { return 1 }, w1)
	r.CounterFunc("fleet_total", "Fleet counter.", func() uint64 { return 2 }, w2)

	r.Unregister("fleet_total", w1)
	var text strings.Builder
	if err := r.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), `worker="w1"`) || !strings.Contains(text.String(), `worker="w2"`) {
		t.Fatalf("unregister left wrong samples:\n%s", text.String())
	}

	// Dropping the last sample removes the family entirely.
	r.Unregister("fleet_total", w2)
	text.Reset()
	if err := r.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), "fleet_total") {
		t.Fatalf("empty family still exposed:\n%s", text.String())
	}
	// Unregistering what is already gone is a no-op, not a panic.
	r.Unregister("fleet_total", w2)
	r.Unregister("never_registered")
}

func TestEventsSinceAndGap(t *testing.T) {
	j := NewJournal(4)
	for i := 1; i <= 3; i++ {
		j.Recordf("k", "event %d", i)
	}
	ev, gap := j.EventsSince(0, "")
	if gap || len(ev) != 3 || ev[0].Seq != 1 {
		t.Fatalf("since 0: %d events gap=%v", len(ev), gap)
	}
	ev, gap = j.EventsSince(2, "")
	if gap || len(ev) != 1 || ev[0].Seq != 3 {
		t.Fatalf("since 2: %+v gap=%v", ev, gap)
	}
	if ev, gap = j.EventsSince(3, ""); gap || len(ev) != 0 {
		t.Fatalf("caught up: %d events gap=%v", len(ev), gap)
	}

	// Overflow the ring: seqs 1..3 are evicted (capacity 4, 7 recorded).
	for i := 4; i <= 7; i++ {
		j.Recordf("other", "event %d", i)
	}
	ev, gap = j.EventsSince(1, "")
	if !gap || len(ev) != 4 || ev[0].Seq != 4 {
		t.Fatalf("after eviction since 1: %d events gap=%v", len(ev), gap)
	}
	// A cursor at the eviction boundary has lost nothing.
	if _, gap = j.EventsSince(3, ""); gap {
		t.Fatal("since 3 flagged a gap; seqs 4..7 are all retained")
	}
	if j.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", j.Dropped())
	}

	// Kind filter composes with since.
	ev, _ = j.EventsSince(0, "other")
	if len(ev) != 4 {
		t.Fatalf("kind filter: %d events, want 4", len(ev))
	}
	if ev, _ = j.EventsSince(0, "k"); len(ev) != 0 {
		t.Fatalf("evicted kind still returned: %+v", ev)
	}
}

func TestRecordForwarded(t *testing.T) {
	j := NewJournal(8)
	j.Record("local", "first")
	j.RecordForwarded("w1", Event{
		Seq:  41,
		Wall: time.Unix(100, 0).UTC(),
		Kind: "span-epoch",
		Msg:  "trace x",
	})
	ev := j.Events()
	if len(ev) != 2 {
		t.Fatalf("events: %d", len(ev))
	}
	fwd := ev[1]
	if fwd.Seq != 2 || fwd.Origin != "w1" || fwd.OriginSeq != 41 ||
		fwd.Kind != "span-epoch" || !fwd.Wall.Equal(time.Unix(100, 0)) {
		t.Fatalf("forwarded event: %+v", fwd)
	}
}

func TestServerEventsSinceKindAndStatus(t *testing.T) {
	tel := NewTelemetry()
	small := NewJournal(4)
	tel.Journal = small
	for i := 1; i <= 3; i++ {
		tel.Record(EventCheckpoint, "wrote")
		tel.Record(EventEpochSwap, "promoted")
	}
	tel.PublishJSON("/cluster", func() any {
		return map[string]any{"role": "coordinator"}
	})
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	var page struct {
		Dropped uint64  `json:"dropped"`
		Gap     bool    `json:"gap"`
		Head    uint64  `json:"head"`
		Events  []Event `json:"events"`
	}
	// 6 events through a 4-slot ring: seqs 1..2 evicted. A poll from 0
	// must flag the gap and report the evictions.
	code, body := get("/events?since=0")
	if code != 200 {
		t.Fatalf("/events?since=0: code=%d", code)
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if !page.Gap || page.Dropped != 2 || page.Head != 6 || len(page.Events) != 4 {
		t.Fatalf("gap poll: %+v", page)
	}

	// From the head cursor: caught up, no gap.
	code, body = get("/events?since=6&kind=" + EventCheckpoint)
	if code != 200 {
		t.Fatalf("code=%d", code)
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Gap || len(page.Events) != 0 || page.Head != 6 {
		t.Fatalf("caught-up poll: %+v", page)
	}

	// Kind filter composes with a mid-stream cursor.
	_, body = get("/events?since=4&kind=" + EventEpochSwap)
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 1 || page.Events[0].Kind != EventEpochSwap {
		t.Fatalf("kind filter: %+v", page)
	}

	if code, _ := get("/events?since=notanumber"); code != http.StatusBadRequest {
		t.Fatalf("bad since: code=%d, want 400", code)
	}

	// Published status pages serve live JSON and appear in the index.
	code, body = get("/cluster")
	if code != 200 || !strings.Contains(body, `"role": "coordinator"`) {
		t.Fatalf("/cluster: code=%d body=%q", code, body)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/cluster") {
		t.Fatalf("index missing status page: code=%d body=%q", code, body)
	}
}
