package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// LatencyBuckets is the default bucket ladder for classify-latency
// histograms, in seconds: 50ns up to ~1.6ms in powers of two, wide enough
// to catch a pipeline that has fallen off its ~200ns/flow budget by four
// orders of magnitude before the tail disappears into +Inf.
var LatencyBuckets = []float64{
	50e-9, 100e-9, 200e-9, 400e-9, 800e-9,
	1.6e-6, 3.2e-6, 6.4e-6, 12.8e-6, 25.6e-6,
	51.2e-6, 102.4e-6, 204.8e-6, 409.6e-6, 1.6384e-3,
}

// BuildBuckets is the bucket ladder for pipeline-compilation durations, in
// seconds: a reused rebuild at paper scale lands in the low milliseconds, a
// cold full-table build in the tens of seconds — both ends need resolution.
var BuildBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 25, 60, 120,
}

// WireBuckets is the bucket ladder for cluster wire-level span durations
// (epoch propagation, shard handoff, report round-trips), in seconds: from
// 100µs (loopback control-plane round-trip) to 30s (a full-table cold
// compile on a slow worker), log-spaced so both a healthy LAN handoff and a
// degraded WAN one keep resolution.
var WireBuckets = []float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket concurrent histogram: observations land in
// the first bucket whose upper bound is >= the value (+Inf implicit).
// Observe is lock-free (binary search + two atomic adds + a CAS for the
// sum); for hot paths, NewShard gives a plain-memory shard that merges in
// bulk at a barrier.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given increasing upper bounds.
func NewHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// bucketIndex returns the index of the first bound >= v (len(bounds) for
// +Inf).
func (h *Histogram) bucketIndex(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.addSum(v)
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// Shard is a plain-memory accumulation buffer for one goroutine: Observe
// touches no shared state, and Flush folds the shard into the parent with
// a handful of atomic adds. This is how per-worker classify latency stays
// off the hot path and merges at the runtime's existing barriers. A nil
// shard's methods are no-ops, so call sites need no telemetry guards.
type Shard struct {
	h      *Histogram
	counts []uint64
	count  uint64
	sum    float64
}

// NewShard returns an empty shard of h.
func (h *Histogram) NewShard() *Shard {
	return &Shard{h: h, counts: make([]uint64, len(h.bounds)+1)}
}

// Observe records one value into the shard (no shared state touched).
func (s *Shard) Observe(v float64) {
	if s == nil {
		return
	}
	s.counts[s.h.bucketIndex(v)]++
	s.count++
	s.sum += v
}

// Flush merges the shard into its parent histogram and resets it.
func (s *Shard) Flush() {
	if s == nil || s.count == 0 {
		return
	}
	for i, c := range s.counts {
		if c > 0 {
			s.h.counts[i].Add(c)
			s.counts[i] = 0
		}
	}
	s.h.count.Add(s.count)
	s.h.addSum(s.sum)
	s.count, s.sum = 0, 0
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the (non-cumulative)
	// count for Bounds[i], with Counts[len(Bounds)] the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the current state. Counts are read bucket-by-bucket, so
// a snapshot taken mid-observation may be off by the in-flight value —
// fine for scrapes, which are sampled anyway.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    bitsFloat(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// the containing bucket, the standard Prometheus histogram_quantile
// estimate. It returns 0 for an empty histogram; values in the +Inf bucket
// clamp to the highest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lo + (s.Bounds[i]-lo)*frac
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}
