package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event kinds recorded by the runtime and its feeds. Keeping these as
// shared constants means an operator can alert on kinds without parsing
// message text.
const (
	EventEpochSwap       = "epoch-swap"
	EventDegraded        = "degraded"
	EventShedStart       = "shed-start"
	EventShedStop        = "shed-stop"
	EventCheckpoint      = "checkpoint"
	EventCheckpointError = "checkpoint-error"
	EventRebuild         = "rebuild"
	EventRebuildReused   = "rebuild-reused"
	EventBGPEstablish    = "bgp-establish"
	EventBGPFlap         = "bgp-flap"
	EventBGPGiveUp       = "bgp-giveup"
	EventCollectorError  = "collector-error"

	// Cluster-mode lifecycle: shard ownership and worker liveness.
	EventShardAssign         = "shard-assign"
	EventShardHandoff        = "shard-handoff"
	EventShardRevoke         = "shard-revoke"
	EventWorkerJoin          = "worker-join"
	EventWorkerDead          = "worker-dead"
	EventHeartbeatMiss       = "heartbeat-miss"
	EventClusterRebalance    = "cluster-rebalance"
	EventClusterEpoch        = "cluster-epoch"
	EventClusterDegraded     = "cluster-degraded"
	EventClusterRecovered    = "cluster-recovered"
	EventWorkerReconnect     = "worker-reconnect"
	EventStaleReportRejected = "stale-report-rejected"

	// Durable deployment: authenticated transports, the persisted shard
	// ledger, and coordinator failover.
	EventAuthFailure  = "auth-failure"
	EventConnRejected = "conn-rejected"
	EventAcceptError  = "accept-error"
	EventLedgerWrite  = "ledger-write"
	EventLedgerError  = "ledger-error"
	EventLedgerResume = "ledger-resume"
	EventTakeover     = "coordinator-takeover"
	EventShardReclaim = "shard-reclaim"

	// Cluster observability plane: wire-level trace spans and telemetry
	// federation (DESIGN.md §5g).
	EventSpanEpoch      = "span-epoch"
	EventSpanHandoff    = "span-handoff"
	EventTelemetryJoin  = "telemetry-join"
	EventTelemetryLost  = "telemetry-lost"
	EventTelemetryError = "telemetry-error"
)

// Event is one structured journal entry.
type Event struct {
	// Seq increases by one per recorded event, across drops: a gap-free
	// Seq range proves no event was lost between two reads.
	Seq uint64 `json:"seq"`
	// Wall is the wall-clock timestamp; Mono is the monotonic offset from
	// journal creation, immune to wall-clock steps during multi-week runs.
	Wall time.Time     `json:"wall"`
	Mono time.Duration `json:"mono"`
	Kind string        `json:"kind"`
	Msg  string        `json:"msg"`
	// Origin and OriginSeq identify a forwarded event: the identity of the
	// journal it was first recorded in and its Seq there. Both are empty for
	// locally recorded events. The local Seq above stays gap-free either way.
	Origin    string `json:"origin,omitempty"`
	OriginSeq uint64 `json:"originSeq,omitempty"`
}

// Journal is a bounded in-memory ring of structured events: epoch swaps,
// BGP flaps and reconnects, shedding watermark transitions, checkpoint
// writes and failures, collector errors. When full, the oldest events are
// overwritten (and counted), so a misbehaving feed cannot grow the journal
// without bound. All methods are safe for concurrent use and safe on a nil
// journal (no-ops), so instrumented code needs no telemetry guards.
type Journal struct {
	mu      sync.Mutex
	start   time.Time // carries the monotonic clock reading
	ring    []Event
	head    int // index of the oldest event
	n       int
	seq     uint64
	dropped uint64
}

// DefaultJournalCapacity bounds a journal built by NewJournal(0).
const DefaultJournalCapacity = 1024

// NewJournal returns an empty journal holding up to capacity events
// (DefaultJournalCapacity when <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{start: time.Now(), ring: make([]Event, capacity)}
}

// Record appends one event, evicting the oldest when full.
func (j *Journal) Record(kind, msg string) {
	if j == nil {
		return
	}
	now := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e := Event{Seq: j.seq, Wall: now, Mono: now.Sub(j.start), Kind: kind, Msg: msg}
	if j.n == len(j.ring) {
		j.ring[j.head] = e
		j.head = (j.head + 1) % len(j.ring)
		j.dropped++
		return
	}
	j.ring[(j.head+j.n)%len(j.ring)] = e
	j.n++
}

// Recordf is Record with fmt formatting.
func (j *Journal) Recordf(kind, format string, args ...any) {
	if j == nil {
		return
	}
	j.Record(kind, fmt.Sprintf(format, args...))
}

// RecordForwarded interleaves an event first recorded in another process's
// journal: kind, message, and wall timestamp are preserved from the origin,
// Origin/OriginSeq tag where it came from, and the event still gets a fresh
// local Seq (keeping the gap-free-Seq invariant) and a local Mono offset.
func (j *Journal) RecordForwarded(origin string, e Event) {
	if j == nil {
		return
	}
	now := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	fe := Event{
		Seq: j.seq, Wall: e.Wall, Mono: now.Sub(j.start),
		Kind: e.Kind, Msg: e.Msg, Origin: origin, OriginSeq: e.Seq,
	}
	if fe.Wall.IsZero() {
		fe.Wall = now
	}
	if j.n == len(j.ring) {
		j.ring[j.head] = fe
		j.head = (j.head + 1) % len(j.ring)
		j.dropped++
		return
	}
	j.ring[(j.head+j.n)%len(j.ring)] = fe
	j.n++
}

// Events returns a copy of the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.ring[(j.head+i)%len(j.ring)]
	}
	return out
}

// EventsSince returns the retained events with Seq > since, oldest first,
// optionally restricted to one kind (empty kind matches all). gap reports
// that eviction lost events the caller has not seen: since names a sequence
// number older than the oldest retained event. A since of 0 means "from the
// beginning" and only gaps when events have actually been dropped. This is
// the incremental-poll primitive behind /events?since=.
func (j *Journal) EventsSince(since uint64, kind string) (events []Event, gap bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.n == 0 {
		return nil, false
	}
	oldest := j.seq - uint64(j.n) + 1
	gap = since+1 < oldest
	for i := 0; i < j.n; i++ {
		e := j.ring[(j.head+i)%len(j.ring)]
		if e.Seq <= since {
			continue
		}
		if kind != "" && e.Kind != kind {
			continue
		}
		events = append(events, e)
	}
	return events, gap
}

// Seq returns the sequence number of the most recently recorded event
// (0 before the first Record).
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// StartNanos returns the journal's creation wall time in unix nanoseconds.
// A restarted process gets a fresh journal whose Seq restarts at 1; the
// (origin, StartNanos) pair lets a federation receiver tell a restart from
// a retransmission and reset its dedup cursor accordingly.
func (j *Journal) StartNanos() int64 {
	if j == nil {
		return 0
	}
	return j.start.UnixNano()
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Dropped returns how many events were evicted to make room.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Summary renders an operator-facing digest: per-kind totals over the
// retained window plus the trailing `tail` events. The cmd tools print it
// on shutdown so an interrupted run still tells its story.
func (j *Journal) Summary(tail int) string {
	if j == nil {
		return "journal: disabled"
	}
	events := j.Events()
	dropped := j.Dropped()
	if len(events) == 0 {
		return "journal: no events recorded"
	}
	byKind := map[string]int{}
	for _, e := range events {
		byKind[e.Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "journal: %d events retained", len(events))
	if dropped > 0 {
		fmt.Fprintf(&b, " (%d older dropped)", dropped)
	}
	b.WriteString("\n  by kind:")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, byKind[k])
	}
	if tail > 0 {
		if tail > len(events) {
			tail = len(events)
		}
		fmt.Fprintf(&b, "\n  last %d:", tail)
		for _, e := range events[len(events)-tail:] {
			fmt.Fprintf(&b, "\n    [%8.3fs] %-16s %s", e.Mono.Seconds(), e.Kind, e.Msg)
		}
	}
	return b.String()
}
