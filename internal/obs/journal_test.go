package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Recordf("tick", "event %d", i)
	}
	if j.Len() != 4 {
		t.Fatalf("len: got %d, want 4", j.Len())
	}
	if j.Dropped() != 2 {
		t.Fatalf("dropped: got %d, want 2", j.Dropped())
	}
	events := j.Events()
	// Oldest first, with a gap-free Seq range proving which were evicted.
	if events[0].Msg != "event 2" || events[3].Msg != "event 5" {
		t.Fatalf("retained window: %+v", events)
	}
	for i, e := range events {
		if e.Seq != uint64(i+3) {
			t.Fatalf("seq[%d]: got %d, want %d", i, e.Seq, i+3)
		}
		if e.Mono < 0 {
			t.Fatalf("negative monotonic offset: %v", e.Mono)
		}
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record("kind", "msg") // must not panic
	j.Recordf("kind", "%d", 1)
	if j.Len() != 0 || j.Dropped() != 0 || j.Events() != nil {
		t.Fatal("nil journal must report empty")
	}
	if got := j.Summary(5); got != "journal: disabled" {
		t.Fatalf("nil summary: %q", got)
	}
}

func TestJournalSummary(t *testing.T) {
	j := NewJournal(8)
	j.Record(EventEpochSwap, "promoted epoch 1")
	j.Record(EventBGPFlap, "session lost")
	j.Record(EventEpochSwap, "promoted epoch 2")
	s := j.Summary(2)
	for _, want := range []string{
		"3 events retained",
		"bgp-flap=1 epoch-swap=2",
		"last 2:",
		"promoted epoch 2",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "promoted epoch 1") {
		t.Fatalf("tail of 2 must omit the first event:\n%s", s)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Record("tick", "x")
				j.Events()
				j.Summary(1)
			}
		}()
	}
	wg.Wait()
	if got := j.Dropped() + uint64(j.Len()); got != 800 {
		t.Fatalf("retained+dropped: got %d, want 800", got)
	}
}

func TestTelemetryHealthDefaults(t *testing.T) {
	tel := NewTelemetry()
	if h := tel.Health(); !h.Ready || h.Status != "ok" {
		t.Fatalf("default health: %+v", h)
	}
	tel.SetHealth(func() Health {
		return Health{Ready: false, Status: "unready", Detail: "warming up"}
	})
	if h := tel.Health(); h.Ready || h.Status != "unready" {
		t.Fatalf("installed health source ignored: %+v", h)
	}
	var nilTel *Telemetry
	if h := nilTel.Health(); !h.Ready {
		t.Fatalf("nil telemetry must default ready: %+v", h)
	}
	nilTel.Record("kind", "msg") // must not panic
}
