// Package obs is the dependency-free telemetry layer: a concurrent metric
// registry (atomic counters, gauges, fixed-bucket histograms, plus
// func-backed metrics sampled at scrape time), Prometheus-text and JSON
// exposition, a bounded structured event journal, and an embedded HTTP
// server exposing /metrics, /healthz, /events and /debug/pprof.
//
// The paper's method is only trustworthy at IXP scale under sustained
// visibility into per-class traffic shares (Table 1) over weeks of flow
// data; the reproducibility study of this paper (arXiv:1911.05164) shows
// how silently a drifting pipeline invalidates results. Everything the
// runtime already counts becomes scrapeable here, from one source of
// truth: func-backed metrics read the same snapshot the Go-level Stats()
// methods return, so the scrape endpoint and the bespoke snapshots can
// never disagree.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" metric dimension (e.g. class="bogon").
type Label struct {
	Name  string
	Value string
}

// Kind discriminates metric families.
type Kind int

// Metric kinds, in Prometheus vocabulary.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adds delta (CAS loop; gauges are not hot-path metrics here).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// sample is one (labels → value source) instance within a family.
type sample struct {
	labels    []Label
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
	histFn    func() HistogramSnapshot
}

// family groups every sample sharing a metric name (one HELP/TYPE block).
type family struct {
	name    string
	help    string
	kind    Kind
	samples map[string]*sample // keyed by serialized labels
}

// Registry is a concurrent metric registry. Registration is get-or-create:
// asking for an existing (name, labels) pair returns the same instance, so
// independent components can share a family; func-backed registrations
// replace an earlier function under the same key (the newest owner wins,
// which lets tests and restarted components re-instrument). Registering a
// name under a different kind panics — that is a programming error, not a
// runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns the family for name, creating it with help/kind.
func (r *Registry) familyFor(name, help string, kind Kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, samples: make(map[string]*sample)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// labelKey serializes labels into a canonical (sorted) map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// sortedLabels returns a sorted copy for stable exposition.
func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindCounter)
	key := labelKey(labels)
	if s, ok := f.samples[key]; ok && s.counter != nil {
		return s.counter
	}
	c := &Counter{}
	f.samples[key] = &sample{labels: sortedLabels(labels), counter: c}
	return c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindGauge)
	key := labelKey(labels)
	if s, ok := f.samples[key]; ok && s.gauge != nil {
		return s.gauge
	}
	g := &Gauge{}
	f.samples[key] = &sample{labels: sortedLabels(labels), gauge: g}
	return g
}

// Histogram returns the fixed-bucket histogram registered under
// (name, labels); buckets are upper bounds in increasing order (+Inf is
// implicit) and are fixed by the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindHistogram)
	key := labelKey(labels)
	if s, ok := f.samples[key]; ok && s.hist != nil {
		return s.hist
	}
	h := NewHistogram(buckets)
	f.samples[key] = &sample{labels: sortedLabels(labels), hist: h}
	return h
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — the bridge that turns an existing Stats() struct into a metric
// without a second counter that could drift from it.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindCounter)
	f.samples[labelKey(labels)] = &sample{labels: sortedLabels(labels), counterFn: fn}
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindGauge)
	f.samples[labelKey(labels)] = &sample{labels: sortedLabels(labels), gaugeFn: fn}
}

// HistogramFunc registers a histogram whose snapshot is sampled from fn at
// scrape time — the histogram-shaped sibling of CounterFunc, used by the
// cluster coordinator to expose federated worker histograms without
// replaying every observation locally.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, KindHistogram)
	f.samples[labelKey(labels)] = &sample{labels: sortedLabels(labels), histFn: fn}
}

// Unregister removes the sample registered under (name, labels), and the
// whole family once its last sample is gone. It exists for series with a
// bounded lifetime — a dead worker's federated metrics, a released shard's
// cursor gauge — so a long-lived registry does not accumulate tombstones.
// Unregistering an unknown sample is a no-op.
func (r *Registry) Unregister(name string, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return
	}
	delete(f.samples, labelKey(labels))
	if len(f.samples) == 0 {
		delete(r.families, name)
	}
}

// famView is an immutable scrape-time view of one family: the structure is
// copied under the registry lock, but the value reads (atomics and func
// calls) happen outside it so a slow func-backed metric cannot wedge
// registration. The sample structs themselves are write-once, so sharing
// their pointers is safe.
type famView struct {
	name    string
	help    string
	kind    Kind
	samples []*sample
}

// snapshotFamilies copies the family/sample structure under the lock,
// sorted by family name and label key for deterministic exposition.
func (r *Registry) snapshotFamilies() []famView {
	r.mu.Lock()
	views := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		v := famView{name: f.name, help: f.help, kind: f.kind}
		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v.samples = append(v.samples, f.samples[k])
		}
		views = append(views, v)
	}
	r.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].name < views[j].name })
	return views
}

// value reads a counter/gauge sample's current value.
func (s *sample) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.counterFn != nil:
		return float64(s.counterFn())
	case s.gauge != nil:
		return s.gauge.Value()
	case s.gaugeFn != nil:
		return s.gaugeFn()
	}
	return 0
}

// histSnapshot reads a histogram sample's current snapshot, whether the
// sample owns a live Histogram or is func-backed.
func (s *sample) histSnapshot() HistogramSnapshot {
	if s.hist != nil {
		return s.hist.Snapshot()
	}
	if s.histFn != nil {
		return s.histFn()
	}
	return HistogramSnapshot{}
}
