package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("flows_total", "Flows.", Label{Name: "class", Value: "bogon"})
	b := r.Counter("flows_total", "Flows.", Label{Name: "class", Value: "bogon"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("flows_total", "Flows.", Label{Name: "class", Value: "valid"})
	if a == c {
		t.Fatal("different labels must return distinct counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter: got %d, want 3", b.Value())
	}
	if c.Value() != 0 {
		t.Fatalf("sibling counter: got %d, want 0", c.Value())
	}
}

func TestRegistryLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("depth", "Depth.", Label{Name: "a", Value: "1"}, Label{Name: "b", Value: "2"})
	b := r.Gauge("depth", "Depth.", Label{Name: "b", Value: "2"}, Label{Name: "a", Value: "1"})
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering x_total as a gauge")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge: got %v, want 4", got)
	}
	g.Add(-4)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge: got %v, want 0", got)
	}
}

// TestRegistryConcurrent is the race-detector stress: writers bump counters,
// gauges, and histograms (direct and via shards) while scrapers serialize
// the registry in both formats and new series register concurrently.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", LatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops_total", "Ops.", Label{Name: "worker", Value: fmt.Sprint(w)})
			g := r.Gauge("depth", "Depth.")
			sh := h.NewShard()
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) * 1e-9)
				sh.Observe(float64(i) * 1e-9)
				if i%500 == 0 {
					sh.Flush()
				}
			}
			sh.Flush()
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
				}
				if err := r.WriteJSON(io.Discard); err != nil {
					t.Errorf("WriteJSON: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for w := 0; w < 4; w++ {
		total += r.Counter("ops_total", "Ops.", Label{Name: "worker", Value: fmt.Sprint(w)}).Value()
	}
	if total != 8000 {
		t.Fatalf("ops_total sum: got %d, want 8000", total)
	}
	snap, ok := r.FindHistogram("lat_seconds")
	if !ok {
		t.Fatal("lat_seconds not found")
	}
	if snap.Count != 16000 { // 8000 direct + 8000 via shards
		t.Fatalf("histogram count: got %d, want 16000", snap.Count)
	}
}

func TestCounterFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("view_total", "View.", func() uint64 { return 1 })
	r.CounterFunc("view_total", "View.", func() uint64 { return 7 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "view_total 7") {
		t.Fatalf("re-registered func must win:\n%s", sb.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count: got %d, want 5", s.Count)
	}
	if got := s.Quantile(0.5); got <= 1 || got > 2 {
		t.Fatalf("p50: got %v, want in (1, 2]", got)
	}
	// The +Inf bucket clamps to the highest finite bound.
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("p100: got %v, want 4", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile: got %v, want 0", got)
	}
}
