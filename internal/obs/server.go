package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the telemetry HTTP mux:
//
//	/metrics       Prometheus text exposition (?format=json for JSON)
//	/healthz       readiness JSON; HTTP 503 while unready
//	/events        the event journal as JSON (?n=K for the trailing K,
//	               ?since=S for events with seq > S, ?kind=K to filter by
//	               kind; the reply's gap field reports eviction losses)
//	/debug/pprof/  the standard pprof endpoints
//
// plus any JSON status pages published via Telemetry.PublishJSON (the
// cluster coordinator mounts /cluster this way). Use it to embed telemetry
// in an existing server; Serve starts a standalone one.
func Handler(t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			t.Metrics.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		h := t.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var since uint64
		if s := q.Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = v
		}
		events, gap := t.Journal.EventsSince(since, q.Get("kind"))
		if s := q.Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Dropped uint64 `json:"dropped"`
			// Gap reports that eviction lost events between the requested
			// since and the oldest retained event — the poller's cursor
			// fell off the ring tail.
			Gap bool `json:"gap"`
			// Head is the newest sequence number; pass it back as ?since=
			// on the next poll.
			Head   uint64  `json:"head"`
			Events []Event `json:"events"`
		}{t.Journal.Dropped(), gap, t.Journal.Seq(), events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if fn, ok := t.statusPage(req.URL.Path); ok {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(fn())
			return
		}
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "spoofscope telemetry\n\n/metrics\n/metrics?format=json\n/healthz\n/events\n/debug/pprof/\n")
		for _, p := range t.statusPaths() {
			fmt.Fprintln(w, p)
		}
	})
	return mux
}

// Server is an embedded telemetry HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (use port 0 for an ephemeral port) and serves the
// telemetry handler in a background goroutine until Close.
func Serve(addr string, t *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %q: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(t), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately; in-flight scrapes are aborted.
func (s *Server) Close() error { return s.srv.Close() }
