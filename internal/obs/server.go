package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the telemetry HTTP mux:
//
//	/metrics       Prometheus text exposition (?format=json for JSON)
//	/healthz       readiness JSON; HTTP 503 while unready
//	/events        the event journal as JSON (?n=K for the trailing K)
//	/debug/pprof/  the standard pprof endpoints
//
// Use it to embed telemetry in an existing server; Serve starts a
// standalone one.
func Handler(t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			t.Metrics.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		h := t.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		events := t.Journal.Events()
		if s := req.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{t.Journal.Dropped(), events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "spoofscope telemetry\n\n/metrics\n/metrics?format=json\n/healthz\n/events\n/debug/pprof/\n")
	})
	return mux
}

// Server is an embedded telemetry HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (use port 0 for an ephemeral port) and serves the
// telemetry handler in a background goroutine until Close.
func Serve(addr string, t *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %q: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(t), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately; in-flight scrapes are aborted.
func (s *Server) Close() error { return s.srv.Close() }
