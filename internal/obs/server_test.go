package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	tel := NewTelemetry()
	tel.Metrics.Counter("smoke_total", "Smoke.").Add(9)
	tel.Record(EventEpochSwap, "promoted epoch 1")
	tel.SetHealth(func() Health {
		return Health{Ready: false, Status: "unready", Detail: "no epoch yet"}
	})
	srv, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "smoke_total 9") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"smoke_total"`) {
		t.Fatalf("/metrics?format=json: code=%d body=%q", code, body)
	}

	// Unready must be an HTTP-level 503 so load balancers need no parsing.
	code, body := get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while unready: code=%d, want 503", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Ready || h.Detail != "no epoch yet" {
		t.Fatalf("/healthz payload: %q (err=%v)", body, err)
	}
	tel.SetHealth(func() Health { return Health{Ready: true, Status: "ok"} })
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz while ready: code=%d, want 200", code)
	}

	code, body = get("/events?n=1")
	if code != 200 {
		t.Fatalf("/events: code=%d", code)
	}
	var events struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/events payload: %v\n%s", err, body)
	}
	if len(events.Events) != 1 || events.Events[0].Kind != EventEpochSwap {
		t.Fatalf("/events: %+v", events)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope: code=%d, want 404", code)
	}
}
