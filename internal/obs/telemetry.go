package obs

import "sync/atomic"

// Health is a readiness verdict, the /healthz payload.
type Health struct {
	// Ready reports whether the component can do useful work right now —
	// for the live runtime, whether a first routing-state epoch has been
	// promoted. Load balancers and orchestrators gate on this.
	Ready bool `json:"ready"`
	// Status is "ok", "degraded" (serving, but verdicts are marked stale)
	// or "unready".
	Status string `json:"status"`
	// Detail is a human-readable explanation of a non-ok status.
	Detail string `json:"detail,omitempty"`
}

// Telemetry bundles the three observability primitives a component is
// wired with: the metric registry, the event journal, and a health source.
// One Telemetry typically serves one process, shared by the runtime, its
// BGP feed and its collectors, and exposed by one Server.
type Telemetry struct {
	Metrics *Registry
	Journal *Journal

	health atomic.Pointer[func() Health]
}

// NewTelemetry builds a Telemetry with an empty registry and a
// default-capacity journal.
func NewTelemetry() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Journal: NewJournal(0)}
}

// SetHealth installs the readiness source (typically the live runtime's;
// the last caller wins). A nil receiver is a no-op.
func (t *Telemetry) SetHealth(fn func() Health) {
	if t == nil {
		return
	}
	t.health.Store(&fn)
}

// Health evaluates the installed readiness source. Without one — or on a
// nil receiver — it reports ready/ok, so a metrics-only process is not
// spuriously unready.
func (t *Telemetry) Health() Health {
	if t == nil {
		return Health{Ready: true, Status: "ok"}
	}
	if fn := t.health.Load(); fn != nil {
		return (*fn)()
	}
	return Health{Ready: true, Status: "ok"}
}

// Record forwards to the journal; safe on a nil Telemetry.
func (t *Telemetry) Record(kind, msg string) {
	if t == nil {
		return
	}
	t.Journal.Record(kind, msg)
}

// Recordf forwards to the journal with formatting; safe on a nil Telemetry.
func (t *Telemetry) Recordf(kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.Journal.Recordf(kind, format, args...)
}
