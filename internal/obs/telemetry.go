package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Health is a readiness verdict, the /healthz payload.
type Health struct {
	// Ready reports whether the component can do useful work right now —
	// for the live runtime, whether a first routing-state epoch has been
	// promoted. Load balancers and orchestrators gate on this.
	Ready bool `json:"ready"`
	// Status is "ok", "degraded" (serving, but verdicts are marked stale)
	// or "unready".
	Status string `json:"status"`
	// Detail is a human-readable explanation of a non-ok status.
	Detail string `json:"detail,omitempty"`
}

// Telemetry bundles the three observability primitives a component is
// wired with: the metric registry, the event journal, and a health source.
// One Telemetry typically serves one process, shared by the runtime, its
// BGP feed and its collectors, and exposed by one Server.
type Telemetry struct {
	Metrics *Registry
	Journal *Journal

	health atomic.Pointer[func() Health]

	statusMu sync.Mutex
	status   map[string]func() any
}

// MetricJournalDropped counts journal events evicted from the bounded ring;
// paired with the Gap marker in /events it tells an incremental poller that
// history was lost between two polls.
const MetricJournalDropped = "spoofscope_journal_dropped_total"

// NewTelemetry builds a Telemetry with an empty registry and a
// default-capacity journal. The journal's eviction counter is pre-wired as
// MetricJournalDropped so ring overflow is visible from /metrics.
func NewTelemetry() *Telemetry {
	t := &Telemetry{Metrics: NewRegistry(), Journal: NewJournal(0)}
	t.Metrics.CounterFunc(MetricJournalDropped,
		"Journal events evicted from the bounded ring to make room for newer ones.",
		t.Journal.Dropped)
	return t
}

// PublishJSON mounts a JSON status page at path on any server built from
// this Telemetry: each request evaluates fn and renders the result as
// indented JSON. Re-publishing a path replaces its source (latest wins —
// a promoted standby takes over /cluster from its warm-ledger view this
// way). Safe on a nil Telemetry.
func (t *Telemetry) PublishJSON(path string, fn func() any) {
	if t == nil || path == "" || path == "/" {
		return
	}
	t.statusMu.Lock()
	defer t.statusMu.Unlock()
	if t.status == nil {
		t.status = make(map[string]func() any)
	}
	t.status[path] = fn
}

// statusPage returns the published source for path, if any.
func (t *Telemetry) statusPage(path string) (func() any, bool) {
	if t == nil {
		return nil, false
	}
	t.statusMu.Lock()
	defer t.statusMu.Unlock()
	fn, ok := t.status[path]
	return fn, ok
}

// statusPaths lists the published page paths, sorted.
func (t *Telemetry) statusPaths() []string {
	if t == nil {
		return nil
	}
	t.statusMu.Lock()
	defer t.statusMu.Unlock()
	paths := make([]string, 0, len(t.status))
	for p := range t.status {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// SetHealth installs the readiness source (typically the live runtime's;
// the last caller wins). A nil receiver is a no-op.
func (t *Telemetry) SetHealth(fn func() Health) {
	if t == nil {
		return
	}
	t.health.Store(&fn)
}

// Health evaluates the installed readiness source. Without one — or on a
// nil receiver — it reports ready/ok, so a metrics-only process is not
// spuriously unready.
func (t *Telemetry) Health() Health {
	if t == nil {
		return Health{Ready: true, Status: "ok"}
	}
	if fn := t.health.Load(); fn != nil {
		return (*fn)()
	}
	return Health{Ready: true, Status: "ok"}
}

// Record forwards to the journal; safe on a nil Telemetry.
func (t *Telemetry) Record(kind, msg string) {
	if t == nil {
		return
	}
	t.Journal.Record(kind, msg)
}

// Recordf forwards to the journal with formatting; safe on a nil Telemetry.
func (t *Telemetry) Recordf(kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.Journal.Recordf(kind, format, args...)
}
