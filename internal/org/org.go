// Package org models the CAIDA AS-to-Organization mapping used in §3.2 to
// merge multi-AS organizations: ASes belonging to the same WHOIS
// organization get a full mesh of links so that traffic exchanged between
// them is never considered spoofed, regardless of whether their internal
// peerings are visible in BGP.
package org

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"spoofscope/internal/bgp"
)

// Org is one organization and the ASes registered to it.
type Org struct {
	ID   string    `json:"id"`   // registry handle, e.g. "ORG-EX1"
	Name string    `json:"name"` // human-readable name
	ASNs []bgp.ASN `json:"asns"`
}

// Dataset is an immutable AS-to-organization mapping.
type Dataset struct {
	orgs []Org
	byAS map[bgp.ASN]int
}

// NewDataset builds a dataset. An AS listed under several organizations is
// attributed to the first; organizations are kept in input order.
func NewDataset(orgs []Org) *Dataset {
	d := &Dataset{orgs: make([]Org, len(orgs)), byAS: make(map[bgp.ASN]int)}
	for i, o := range orgs {
		cp := o
		cp.ASNs = append([]bgp.ASN(nil), o.ASNs...)
		sort.Slice(cp.ASNs, func(a, b int) bool { return cp.ASNs[a] < cp.ASNs[b] })
		d.orgs[i] = cp
		for _, as := range cp.ASNs {
			if _, dup := d.byAS[as]; !dup {
				d.byAS[as] = i
			}
		}
	}
	return d
}

// Len returns the number of organizations.
func (d *Dataset) Len() int { return len(d.orgs) }

// Orgs returns all organizations. The slice must not be modified.
func (d *Dataset) Orgs() []Org { return d.orgs }

// OrgOf returns the organization an AS belongs to.
func (d *Dataset) OrgOf(as bgp.ASN) (Org, bool) {
	i, ok := d.byAS[as]
	if !ok {
		return Org{}, false
	}
	return d.orgs[i], true
}

// SameOrg reports whether two ASes belong to the same organization.
func (d *Dataset) SameOrg(a, b bgp.ASN) bool {
	ia, oka := d.byAS[a]
	ib, okb := d.byAS[b]
	return oka && okb && ia == ib
}

// MultiASGroups returns the AS sets of every organization owning more than
// one AS — the groups that get full-mesh links in the cone computations.
func (d *Dataset) MultiASGroups() [][]bgp.ASN {
	var out [][]bgp.ASN
	for _, o := range d.orgs {
		if len(o.ASNs) > 1 {
			out = append(out, append([]bgp.ASN(nil), o.ASNs...))
		}
	}
	return out
}

// Save serializes the dataset as JSON.
func (d *Dataset) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.orgs)
}

// Read parses a dataset serialized by Save.
func Read(r io.Reader) (*Dataset, error) {
	var orgs []Org
	if err := json.NewDecoder(r).Decode(&orgs); err != nil {
		return nil, fmt.Errorf("org: decoding dataset: %w", err)
	}
	return NewDataset(orgs), nil
}
