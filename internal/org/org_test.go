package org

import (
	"bytes"
	"testing"

	"spoofscope/internal/bgp"
)

func testDataset() *Dataset {
	return NewDataset([]Org{
		{ID: "ORG-A", Name: "Alpha Networks", ASNs: []bgp.ASN{65002, 65001}},
		{ID: "ORG-B", Name: "Beta Hosting", ASNs: []bgp.ASN{65010}},
		{ID: "ORG-C", Name: "Gamma Transit", ASNs: []bgp.ASN{65020, 65021, 65022}},
	})
}

func TestOrgOf(t *testing.T) {
	d := testDataset()
	o, ok := d.OrgOf(65001)
	if !ok || o.ID != "ORG-A" {
		t.Fatalf("OrgOf(65001) = %+v %v", o, ok)
	}
	if _, ok := d.OrgOf(99999); ok {
		t.Fatal("OrgOf matched unknown AS")
	}
	// ASNs are sorted inside the org.
	if o.ASNs[0] != 65001 || o.ASNs[1] != 65002 {
		t.Fatalf("ASNs not sorted: %v", o.ASNs)
	}
}

func TestSameOrg(t *testing.T) {
	d := testDataset()
	if !d.SameOrg(65001, 65002) {
		t.Error("65001 and 65002 share ORG-A")
	}
	if d.SameOrg(65001, 65010) {
		t.Error("different orgs reported as same")
	}
	if d.SameOrg(65001, 99999) {
		t.Error("unknown AS reported as same org")
	}
}

func TestMultiASGroups(t *testing.T) {
	d := testDataset()
	groups := d.MultiASGroups()
	if len(groups) != 2 {
		t.Fatalf("MultiASGroups = %v", groups)
	}
	for _, g := range groups {
		if len(g) < 2 {
			t.Fatalf("single-AS group leaked: %v", g)
		}
	}
}

func TestDuplicateASAttribution(t *testing.T) {
	d := NewDataset([]Org{
		{ID: "ORG-1", ASNs: []bgp.ASN{65001}},
		{ID: "ORG-2", ASNs: []bgp.ASN{65001, 65002}},
	})
	o, _ := d.OrgOf(65001)
	if o.ID != "ORG-1" {
		t.Fatalf("duplicate AS attributed to %s, want first org", o.ID)
	}
}

func TestRoundTrip(t *testing.T) {
	d := testDataset()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("Len = %d want %d", got.Len(), d.Len())
	}
	if !got.SameOrg(65020, 65022) {
		t.Fatal("round trip lost org membership")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("Read accepted garbage")
	}
}
