// Package retry provides the capped, jittered exponential backoff shared by
// every supervised link in the system: the BGP session Reconnector and the
// cluster worker's coordinator link. Keeping one implementation means one
// set of properties to test — deterministic schedules under a seed, a hard
// cap, and jitter that spreads a fleet's re-dials so a recovering peer is
// not hit in lockstep.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes per-attempt delays: Initial doubles per consecutive
// failure up to Max, then holds there; each delay is then spread by
// ±Jitter. The zero value is not usable — construct with New.
type Backoff struct {
	initial time.Duration
	max     time.Duration
	jitter  float64

	mu  sync.Mutex
	rng *rand.Rand
}

// Defaults applied by New for zero parameters.
const (
	DefaultInitial = 200 * time.Millisecond
	DefaultMax     = 30 * time.Second
	DefaultJitter  = 0.1
)

// New builds a backoff schedule. Zero initial/max/jitter take the package
// defaults; a negative jitter disables jitter entirely. seed drives the
// jitter RNG, making schedules reproducible.
func New(initial, max time.Duration, jitter float64, seed int64) *Backoff {
	if initial <= 0 {
		initial = DefaultInitial
	}
	if max <= 0 {
		max = DefaultMax
	}
	switch {
	case jitter < 0:
		jitter = 0
	case jitter == 0:
		jitter = DefaultJitter
	}
	return &Backoff{
		initial: initial,
		max:     max,
		jitter:  jitter,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Next returns the jittered, capped delay before retry attempt+1 (attempt
// counts completed failures, starting at 1). The result is never below one
// millisecond, so a mis-tuned schedule cannot spin-dial.
func (b *Backoff) Next(attempt int) time.Duration {
	base := b.initial
	for i := 1; i < attempt && base < b.max; i++ {
		base *= 2
	}
	if base > b.max {
		base = b.max
	}
	if b.jitter > 0 {
		b.mu.Lock()
		f := 1 + (b.rng.Float64()*2-1)*b.jitter
		b.mu.Unlock()
		base = time.Duration(float64(base) * f)
	}
	if base < time.Millisecond {
		base = time.Millisecond
	}
	return base
}

// Sleep blocks for the attempt's delay or until the context is done,
// returning the context error in the latter case. It is the redial wait
// every supervised loop shares: backoff-paced, but immediately
// interruptible by shutdown.
func (b *Backoff) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(b.Next(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
