package retry

import (
	"testing"
	"time"
)

func TestNextDoublesAndCaps(t *testing.T) {
	b := New(100*time.Millisecond, 800*time.Millisecond, -1, 1)
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
	}
	for i, w := range want {
		if d := b.Next(i + 1); d != w {
			t.Errorf("Next(%d) = %v, want %v", i+1, d, w)
		}
	}
}

func TestJitterStaysInBand(t *testing.T) {
	b := New(100*time.Millisecond, time.Second, 0.2, 7)
	for attempt := 1; attempt <= 20; attempt++ {
		d := b.Next(attempt)
		base := 100 * time.Millisecond
		for i := 1; i < attempt && base < time.Second; i++ {
			base *= 2
		}
		if base > time.Second {
			base = time.Second
		}
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if d < lo || d > hi {
			t.Errorf("Next(%d) = %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
}

func TestSeededSchedulesReproduce(t *testing.T) {
	a := New(0, 0, 0, 42)
	b := New(0, 0, 0, 42)
	for attempt := 1; attempt <= 10; attempt++ {
		if da, db := a.Next(attempt), b.Next(attempt); da != db {
			t.Fatalf("attempt %d: %v != %v under equal seeds", attempt, da, db)
		}
	}
}

func TestFloorIsOneMillisecond(t *testing.T) {
	b := New(time.Nanosecond, time.Nanosecond, -1, 1)
	if d := b.Next(1); d < time.Millisecond {
		t.Fatalf("Next(1) = %v below the 1ms floor", d)
	}
}
