package scenario

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"spoofscope/internal/bgp"
	"spoofscope/internal/netx"
	"spoofscope/internal/org"
)

// BusinessType mirrors the PeeringDB-derived categories of Figure 6.
type BusinessType int

// Business types.
const (
	NSP BusinessType = iota
	ISP
	Hosting
	Content
	OtherType
)

func (b BusinessType) String() string {
	switch b {
	case NSP:
		return "NSP"
	case ISP:
		return "ISP"
	case Hosting:
		return "Hosting"
	case Content:
		return "Content"
	default:
		return "Other"
	}
}

// Member is one IXP member with its ground-truth behaviour. The classifier
// must never look at anything except ASN and Port; the rest parameterizes
// the traffic generator and the evaluation.
type Member struct {
	ASIndex int
	ASN     bgp.ASN
	Port    uint32 // IXP switch port (IPFIX ingress/egress interface ID)
	Type    BusinessType

	// TrafficScale is the member's relative share of regular traffic
	// (heavy-tailed across members).
	TrafficScale float64

	// Ground-truth egress filtering gaps: which illegitimate classes the
	// member's network lets out.
	EmitsBogon    bool
	EmitsUnrouted bool
	EmitsInvalid  bool

	// StrayRouter members leak router-interface ICMP (Figure 7's stray
	// traffic); their Invalid packets are dominated by router source IPs.
	StrayRouter bool

	// Attack roles (nonzero only when the corresponding Emits* is set).
	NTPAttackWeight   float64 // share of NTP amplification trigger traffic
	RandomFloodWeight float64 // share of random-spoof flood traffic

	// HiddenPeerAS, if >= 0, is an AS whose space this member legitimately
	// sources via a BGP-invisible link (tunnel / private interconnect).
	// The classifier will flag it Invalid; the WHOIS registry can clear it.
	HiddenPeerAS int
}

// AttackPlan fixes the attack infrastructure addresses for the window.
type AttackPlan struct {
	// NTPVictims are the spoofed source addresses of amplification
	// triggers, most-targeted first.
	NTPVictims []netx.Addr
	// NTPAmplifiers are NTP servers receiving trigger traffic.
	NTPAmplifiers []netx.Addr
	// ScanList emulates the ZMap/Sonar NTP scans of §7: it overlaps
	// NTPAmplifiers only partially.
	ScanList []netx.Addr
	// FloodVictims receive randomly-spoofed flood traffic (top-5 heavy).
	FloodVictims []netx.Addr
	// SteamVictims receive UDP floods on port 27015.
	SteamVictims []netx.Addr
}

// Scenario is the fully synthesized environment.
type Scenario struct {
	Cfg Config

	topo       *topology
	Members    []Member
	Collectors []int // dense AS indices of route-collector peers
	Anns       []bgp.Announcement
	Attack     AttackPlan

	// MeasurementServer is the AS index hosting the Spoofer-style server.
	MeasurementServer int
	// TransitFilters marks transit ASes that drop spoofed traffic arriving
	// from their customers (used by the spoofer path simulation).
	TransitFilters map[int]bool

	byPort map[uint32]int // port -> member index
	byASN  map[bgp.ASN]int

	treeCache map[int]*routeTree // full-export routing trees by origin
}

// Build synthesizes a scenario.
func Build(cfg Config) (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	topo := buildTopology(cfg, rng)

	s := &Scenario{
		Cfg:            cfg,
		topo:           topo,
		TransitFilters: make(map[int]bool),
		byPort:         make(map[uint32]int),
		byASN:          make(map[bgp.ASN]int),
	}
	s.pickCollectors(rng)
	s.pickMembers(rng)
	s.Anns = topo.announcementSet(s.Collectors, s.memberIndices())
	s.planAttacks(rng)
	s.planSpoofer(rng)
	return s, nil
}

// --- accessors ---

// NumASes returns the AS count.
func (s *Scenario) NumASes() int { return len(s.topo.ases) }

// ASInfo returns the ground-truth record for a dense AS index.
func (s *Scenario) ASInfo(i int) *AS { return &s.topo.ases[i] }

// ASNIndex resolves an ASN to its dense index, or -1.
func (s *Scenario) ASNIndex(asn bgp.ASN) int { return s.topo.Index(asn) }

// Orgs returns the AS-to-organization dataset.
func (s *Scenario) Orgs() *org.Dataset { return s.topo.orgs }

// RoutableSpace returns all allocated space (announced + held).
func (s *Scenario) RoutableSpace() netx.IntervalSet { return s.topo.routable }

// MemberByPort resolves an IXP port to a member, or nil.
func (s *Scenario) MemberByPort(port uint32) *Member {
	if i, ok := s.byPort[port]; ok {
		return &s.Members[i]
	}
	return nil
}

// MemberByASN resolves a member ASN, or nil.
func (s *Scenario) MemberByASN(asn bgp.ASN) *Member {
	if i, ok := s.byASN[asn]; ok {
		return &s.Members[i]
	}
	return nil
}

func (s *Scenario) memberIndices() []int {
	out := make([]int, len(s.Members))
	for i, m := range s.Members {
		out[i] = m.ASIndex
	}
	return out
}

// --- synthesis steps ---

// pickCollectors chooses route-collector peer ASes: all tier-1s, then
// transits, plus one stub (real collector peer sets skew large).
func (s *Scenario) pickCollectors(rng *rand.Rand) {
	var t1s, transits, stubs []int
	for i, a := range s.topo.ases {
		switch a.Tier {
		case Tier1:
			t1s = append(t1s, i)
		case Transit:
			transits = append(transits, i)
		default:
			stubs = append(stubs, i)
		}
	}
	s.Collectors = append(s.Collectors, t1s...)
	rng.Shuffle(len(transits), func(i, j int) { transits[i], transits[j] = transits[j], transits[i] })
	for i := 0; len(s.Collectors) < s.Cfg.NumCollectorPeers-1 && i < len(transits); i++ {
		s.Collectors = append(s.Collectors, transits[i])
	}
	if len(stubs) > 0 {
		s.Collectors = append(s.Collectors, stubs[rng.Intn(len(stubs))])
	}
	sort.Ints(s.Collectors)
}

// policyClass is one cell of the Figure 5 Venn distribution.
type policyClass struct {
	b, u, i bool
	p       float64
}

// figure5Distribution reproduces the member-participation Venn of Figure 5.
var figure5Distribution = []policyClass{
	{false, false, false, 0.1802}, // clean
	{true, false, false, 0.0963},  // bogon only
	{false, true, false, 0.0220},  // unrouted only
	{false, false, true, 0.0757},  // invalid only
	{true, true, false, 0.1882},
	{true, false, true, 0.1548},
	{false, true, true, 0.0292},
	{true, true, true, 0.2806},
}

// pickMembers selects IXP members and assigns business types, traffic
// scales, and filtering-gap ground truth.
func (s *Scenario) pickMembers(rng *rand.Rand) {
	var transits, stubs []int
	for i, a := range s.topo.ases {
		switch a.Tier {
		case Transit:
			transits = append(transits, i)
		case Stub:
			stubs = append(stubs, i)
		}
	}
	rng.Shuffle(len(transits), func(i, j int) { transits[i], transits[j] = transits[j], transits[i] })
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	n := s.Cfg.NumMembers
	nNSP := n * 30 / 100
	if nNSP > len(transits) {
		nNSP = len(transits)
	}
	chosen := append([]int(nil), transits[:nNSP]...)
	for i := 0; len(chosen) < n && i < len(stubs); i++ {
		chosen = append(chosen, stubs[i])
	}
	sort.Ints(chosen)

	total := 0.0
	for _, pc := range figure5Distribution {
		total += pc.p
	}

	for i, asIdx := range chosen {
		m := Member{
			ASIndex: asIdx,
			ASN:     s.topo.ases[asIdx].ASN,
			Port:    uint32(i + 1),
		}
		if s.topo.ases[asIdx].Tier == Transit {
			m.Type = NSP
		} else {
			switch r := rng.Float64(); {
			case r < 0.41:
				m.Type = ISP
			case r < 0.70:
				m.Type = Hosting
			case r < 0.82:
				m.Type = Content
			default:
				m.Type = OtherType
			}
		}
		// Heavy-tailed traffic scale (Pareto-ish); content and NSPs big.
		m.TrafficScale = 1.0 / (0.05 + rng.Float64()*rng.Float64())
		if m.Type == Content || m.Type == NSP {
			m.TrafficScale *= 8
		}

		// Filtering-gap ground truth from the Figure 5 distribution;
		// content providers skew clean (they control their hosts).
		r := rng.Float64() * total
		var pc policyClass
		for _, c := range figure5Distribution {
			if r < c.p {
				pc = c
				break
			}
			r -= c.p
		}
		if m.Type == Content && rng.Float64() < 0.7 {
			pc = policyClass{} // clean
		}
		m.EmitsBogon, m.EmitsUnrouted, m.EmitsInvalid = pc.b, pc.u, pc.i

		// Stray-router leakers: a visible minority of members whose
		// Invalid traffic is dominated by router interface addresses.
		if m.EmitsInvalid && rng.Float64() < 0.32 {
			m.StrayRouter = true
		}
		s.Members = append(s.Members, m)
	}
	for i := range s.Members {
		s.byPort[s.Members[i].Port] = i
		s.byASN[s.Members[i].ASN] = i
	}

	// Hidden peerings: ~2% of members (at least two) legitimately source
	// a partner AS's space over a BGP-invisible link; force them to emit
	// Invalid so the false positive actually shows up.
	hidden := 0
	want := len(s.Members) / 50
	if want < 2 {
		want = 2
	}
	for i := range s.Members {
		s.Members[i].HiddenPeerAS = -1
	}
	// Prefer small members: these show up as the near-100%-Invalid
	// members of Figure 4 without dominating the Invalid class's volume.
	var median float64
	{
		scales := make([]float64, len(s.Members))
		for i := range s.Members {
			scales[i] = s.Members[i].TrafficScale
		}
		sort.Float64s(scales)
		median = scales[len(scales)/2]
	}
	for _, i := range rng.Perm(len(s.Members)) {
		if hidden >= want {
			break
		}
		if s.Members[i].TrafficScale > median {
			continue
		}
		partner := stubs[rng.Intn(len(stubs))]
		if partner == s.Members[i].ASIndex {
			continue
		}
		s.Members[i].HiddenPeerAS = partner
		s.Members[i].EmitsInvalid = true
		hidden++
	}
}

// planAttacks fixes victims and amplifiers and assigns attacker weights.
func (s *Scenario) planAttacks(rng *rand.Rand) {
	// Helper: a random host address inside some announced prefix.
	randHost := func() netx.Addr {
		for tries := 0; tries < 100; tries++ {
			a := &s.topo.ases[rng.Intn(len(s.topo.ases))]
			if len(a.Announced) == 0 {
				continue
			}
			p := a.Announced[rng.Intn(len(a.Announced))]
			return p.First() + netx.Addr(rng.Uint64()%p.NumAddrs())
		}
		return netx.AddrFrom4(8, 8, 8, 8)
	}

	// NTP victims: top-10 heavy hitters (Figure 11b).
	for i := 0; i < 10; i++ {
		s.Attack.NTPVictims = append(s.Attack.NTPVictims, randHost())
	}
	// Amplifiers: scale with scenario size.
	nAmp := 200 + s.Cfg.NumStub/4
	seen := make(map[netx.Addr]bool)
	for len(s.Attack.NTPAmplifiers) < nAmp {
		a := randHost()
		if !seen[a] {
			seen[a] = true
			s.Attack.NTPAmplifiers = append(s.Attack.NTPAmplifiers, a)
		}
	}
	// Scan list: ~16% of amplifiers plus unrelated NTP servers
	// (the paper found 3,865 of 24,328 contacted amplifiers in ZMap data).
	for _, a := range s.Attack.NTPAmplifiers {
		if rng.Float64() < 0.16 {
			s.Attack.ScanList = append(s.Attack.ScanList, a)
		}
	}
	for i := 0; i < nAmp*3; i++ {
		s.Attack.ScanList = append(s.Attack.ScanList, randHost())
	}
	// Flood and Steam victims.
	for i := 0; i < 12; i++ {
		s.Attack.FloodVictims = append(s.Attack.FloodVictims, randHost())
	}
	for i := 0; i < 3; i++ {
		s.Attack.SteamVictims = append(s.Attack.SteamVictims, randHost())
	}

	// NTP attacker weights: one member dominates (91.94% in the paper),
	// the top 5 together emit ~97.86%.
	// Attackers sit in small edge/hosting members: a transit-scale member
	// would be a valid source for most of the routed space under the Full
	// Cone, and its triggers would go undetected (the paper's dominant
	// trigger member was clearly visible as Invalid).
	var invalidMembers []int
	for i, m := range s.Members {
		if m.EmitsInvalid {
			invalidMembers = append(invalidMembers, i)
		}
	}
	sort.Slice(invalidMembers, func(a, b int) bool {
		sa := s.Members[invalidMembers[a]].TrafficScale
		sb := s.Members[invalidMembers[b]].TrafficScale
		if sa != sb {
			return sa < sb
		}
		return invalidMembers[a] < invalidMembers[b]
	})
	weights := []float64{0.9194, 0.025, 0.015, 0.012, 0.007}
	for i, w := range weights {
		if i < len(invalidMembers) {
			s.Members[invalidMembers[i]].NTPAttackWeight = w
		}
	}
	// A long tail of tiny trigger sources (the paper saw 44 members).
	for i := len(weights); i < len(invalidMembers) && i < 44; i++ {
		s.Members[invalidMembers[i]].NTPAttackWeight = 0.0214 / 39
	}

	// Random-spoof flooders among unrouted-emitting members; attack hosts
	// concentrate in the larger (hosting-heavy) networks, which also keeps
	// per-member unrouted shares within the Figure 4 envelope.
	var unroutedMembers []int
	for i, m := range s.Members {
		if m.EmitsUnrouted {
			unroutedMembers = append(unroutedMembers, i)
		}
	}
	sort.Slice(unroutedMembers, func(a, b int) bool {
		sa := s.Members[unroutedMembers[a]].TrafficScale
		sb := s.Members[unroutedMembers[b]].TrafficScale
		if sa != sb {
			return sa > sb
		}
		return unroutedMembers[a] < unroutedMembers[b]
	})
	// Only a handful of members actually host flooders ("while fewer
	// networks emit such traffic, they typically emit larger quantities");
	// the rest of the unrouted-emitting members just leak.
	floodW := []float64{0.45, 0.2, 0.12, 0.08, 0.05, 0.01, 0.01, 0.01}
	for i, w := range floodW {
		if i < len(unroutedMembers) {
			s.Members[unroutedMembers[i]].RandomFloodWeight = w
		}
	}
}

// planSpoofer picks the measurement server and transit filtering ground
// truth used by the active-measurement simulation of §4.5.
func (s *Scenario) planSpoofer(rng *rand.Rand) {
	// Server in a stub that is not a member.
	memberSet := make(map[int]bool)
	for _, m := range s.Members {
		memberSet[m.ASIndex] = true
	}
	for i, a := range s.topo.ases {
		if a.Tier == Stub && !memberSet[i] && len(a.Announced) > 0 {
			s.MeasurementServer = i
			break
		}
	}
	// ~25% of mid-tier transits filter spoofed traffic from their
	// customers. Tier-1s do not deploy strict uRPF (asymmetric routing at
	// that scale makes it impossible, as the operator survey of §2.2
	// notes), and the measurement server's own upstream chain never
	// filters — the Spoofer project hosts its sink where probes can
	// actually arrive.
	ancestors := make(map[int]bool)
	queue := []int{s.MeasurementServer}
	for head := 0; head < len(queue); head++ {
		for _, p := range s.topo.ases[queue[head]].Providers {
			if !ancestors[p] {
				ancestors[p] = true
				queue = append(queue, p)
			}
		}
	}
	for i, a := range s.topo.ases {
		if a.Tier == Transit && !ancestors[i] && rng.Float64() < 0.25 {
			s.TransitFilters[i] = true
		}
	}
}

// --- ground-truth helpers used by the traffic generator ---

// CustomerConeIndices returns the ground-truth customer cone of an AS
// (itself included), via BFS over customer links.
func (s *Scenario) CustomerConeIndices(asIdx int) []int {
	seen := map[int]bool{asIdx: true}
	queue := []int{asIdx}
	for head := 0; head < len(queue); head++ {
		for _, c := range s.topo.ases[queue[head]].Customers {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	sort.Ints(queue)
	return queue
}

// SourcePool returns prefixes a member legitimately sources: its own
// announced space, its ground-truth customer cone's space, its hidden
// peer's space, and its org siblings' space. Capped at maxPrefixes.
func (s *Scenario) SourcePool(m *Member, maxPrefixes int) []netx.Prefix {
	var out []netx.Prefix
	add := func(idx int) {
		out = append(out, s.topo.ases[idx].Announced...)
	}
	for _, idx := range s.CustomerConeIndices(m.ASIndex) {
		add(idx)
		if len(out) >= maxPrefixes {
			return out[:maxPrefixes]
		}
	}
	for _, sib := range s.topo.ases[m.ASIndex].Siblings {
		add(sib)
	}
	if m.HiddenPeerAS >= 0 {
		add(m.HiddenPeerAS)
	}
	if len(out) > maxPrefixes {
		out = out[:maxPrefixes]
	}
	return out
}

// HeldPool returns the member's allocated-but-unannounced prefixes (their
// own genuinely unrouted space; misconfigured hosts may source from it).
func (s *Scenario) HeldPool(m *Member) []netx.Prefix {
	return s.topo.ases[m.ASIndex].Held
}

// AllHeldPrefixes returns every held prefix in the scenario (the global
// unrouted-but-allocated pool attackers draw from).
func (s *Scenario) AllHeldPrefixes() []netx.Prefix {
	var out []netx.Prefix
	for i := range s.topo.ases {
		out = append(out, s.topo.ases[i].Held...)
	}
	return out
}

// String summarizes the scenario.
func (s *Scenario) String() string {
	return fmt.Sprintf("scenario{ases=%d members=%d collectors=%d anns=%d window=%s}",
		s.NumASes(), len(s.Members), len(s.Collectors), len(s.Anns),
		s.Cfg.Duration)
}

// Window returns the traffic window.
func (s *Scenario) Window() (time.Time, time.Time) {
	return s.Cfg.Start, s.Cfg.Start.Add(s.Cfg.Duration)
}

// WriteMRT serializes the announcement set as an MRT stream: a peer index
// table, RIB records for announcements observed at collectors, and a tail
// of BGP4MP update messages (a random-looking 10% slice re-encoded as
// updates so both MRT ingestion paths are exercised).
func (s *Scenario) WriteMRT(w io.Writer) error {
	mw := bgp.NewWriter(w)
	ts := s.Cfg.Start

	table := &bgp.PeerIndexTable{
		CollectorID: netx.AddrFrom4(198, 51, 100, 1),
		ViewName:    "spoofscope",
	}
	peerIdx := make(map[bgp.ASN]uint16)
	for i, c := range s.Collectors {
		asn := s.topo.ases[c].ASN
		peerIdx[asn] = uint16(i)
		table.Peers = append(table.Peers, bgp.Peer{
			BGPID: netx.Addr(0x0a000000 + uint32(i)),
			Addr:  netx.Addr(0xc6336401 + uint32(i)),
			AS:    asn,
		})
	}
	if err := mw.WritePeerIndexTable(ts, table); err != nil {
		return err
	}

	// Group announcements by prefix for RIB records.
	byPrefix := make(map[netx.Prefix][]bgp.Announcement)
	var order []netx.Prefix
	for _, a := range s.Anns {
		if _, ok := byPrefix[a.Prefix]; !ok {
			order = append(order, a.Prefix)
		}
		byPrefix[a.Prefix] = append(byPrefix[a.Prefix], a)
	}
	seq := uint32(0)
	for _, p := range order {
		rec := &bgp.RIBRecord{Sequence: seq, Prefix: p}
		seq++
		for _, a := range byPrefix[p] {
			pi, isCollector := peerIdx[a.Path[0]]
			if !isCollector {
				// Route-server observation: encoded as an update below.
				continue
			}
			rec.Entries = append(rec.Entries, bgp.RIBEntry{
				PeerIndex:      pi,
				OriginatedTime: ts,
				Attrs: bgp.Attributes{
					Origin:  bgp.OriginIGP,
					ASPath:  []bgp.PathSegment{{Type: bgp.SegmentSequence, ASNs: a.Path}},
					NextHop: table.Peers[pi].Addr,
				},
			})
		}
		if len(rec.Entries) > 0 {
			if err := mw.WriteRIB(ts, rec); err != nil {
				return err
			}
		}
	}
	// Route-server (and a slice of collector) observations as updates.
	for i, a := range s.Anns {
		if _, isCollector := peerIdx[a.Path[0]]; isCollector && i%10 != 0 {
			continue
		}
		u := &bgp.Update{
			Attrs: bgp.Attributes{
				Origin:  bgp.OriginIGP,
				ASPath:  []bgp.PathSegment{{Type: bgp.SegmentSequence, ASNs: a.Path}},
				NextHop: netx.AddrFrom4(198, 51, 100, 254),
			},
			NLRI: []netx.Prefix{a.Prefix},
		}
		if err := mw.WriteUpdate(ts.Add(time.Duration(i)*time.Millisecond),
			a.Path[0], 65000, netx.AddrFrom4(198, 51, 100, 253),
			netx.AddrFrom4(198, 51, 100, 254), u); err != nil {
			return err
		}
	}
	return mw.Flush()
}
