// Package scenario synthesizes the measurement environment of the paper:
// an Internet-like AS topology with valley-free routing, BGP announcements
// observed at route collectors and an IXP route server, address allocation
// with deliberately unrouted space, multi-AS organizations with hidden
// internal links, IXP members with realistic business types and filtering
// policies, and the ground truth needed by the traffic generator and the
// evaluation harness.
//
// Everything is deterministic given Config.Seed.
package scenario

import (
	"fmt"
	"time"
)

// Config parameterizes scenario synthesis. The zero value is unusable; use
// DefaultConfig, SmallConfig, or PaperScaleConfig as starting points.
type Config struct {
	Seed int64

	// Topology sizes.
	NumTier1   int // tier-1 clique
	NumTransit int // mid-tier transit providers
	NumStub    int // edge networks

	// NumMembers is the number of IXP member ASes (drawn mostly from
	// transit and stub tiers, like real IXP membership).
	NumMembers int

	// NumCollectorPeers is the number of route-collector vantage ASes
	// (RIPE RIS / RouteViews style peers).
	NumCollectorPeers int

	// MultiASOrgFraction is the fraction of transit ASes that belong to an
	// organization owning additional sibling ASes whose internal links are
	// invisible in BGP.
	MultiASOrgFraction float64

	// SelectiveAnnounceFraction is the fraction of multihomed ASes that
	// announce some prefix to only one of their providers while still
	// sending traffic through the others (the paper's §4.4 asymmetry).
	SelectiveAnnounceFraction float64

	// HeldSpaceFraction is the probability that an AS keeps an extra,
	// allocated-but-unannounced prefix (feeding the Unrouted class).
	HeldSpaceFraction float64

	// Traffic window.
	Start    time.Time
	Duration time.Duration

	// SamplingRate is the 1-in-N packet sampling of the vantage point.
	SamplingRate int
}

// DefaultConfig is a medium scenario: large enough for stable statistics,
// small enough for tests and benchmarks (a few seconds end to end).
func DefaultConfig() Config {
	return Config{
		Seed:                      1,
		NumTier1:                  6,
		NumTransit:                120,
		NumStub:                   1400,
		NumMembers:                220,
		NumCollectorPeers:         12,
		MultiASOrgFraction:        0.12,
		SelectiveAnnounceFraction: 0.30,
		HeldSpaceFraction:         0.35,
		Start:                     time.Date(2017, 2, 5, 0, 0, 0, 0, time.UTC),
		Duration:                  7 * 24 * time.Hour,
		SamplingRate:              10000,
	}
}

// SmallConfig is a fast scenario for unit tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.NumTier1 = 4
	c.NumTransit = 25
	c.NumStub = 220
	c.NumMembers = 60
	c.NumCollectorPeers = 6
	c.Duration = 24 * time.Hour
	return c
}

// PaperScaleConfig approaches the paper's environment: ~700 members and a
// five-digit AS count, four weeks of traffic. Building it takes tens of
// seconds; it is meant for cmd/experiments, not unit tests.
func PaperScaleConfig() Config {
	c := DefaultConfig()
	c.NumTier1 = 8
	c.NumTransit = 400
	c.NumStub = 6000
	c.NumMembers = 700
	c.NumCollectorPeers = 20
	c.Duration = 28 * 24 * time.Hour
	return c
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	switch {
	case c.NumTier1 < 2:
		return fmt.Errorf("scenario: NumTier1 = %d, need >= 2", c.NumTier1)
	case c.NumTransit < 2:
		return fmt.Errorf("scenario: NumTransit = %d, need >= 2", c.NumTransit)
	case c.NumStub < c.NumMembers/2:
		return fmt.Errorf("scenario: NumStub = %d too small for %d members", c.NumStub, c.NumMembers)
	case c.NumMembers < 4:
		return fmt.Errorf("scenario: NumMembers = %d, need >= 4", c.NumMembers)
	case c.NumCollectorPeers < 1:
		return fmt.Errorf("scenario: NumCollectorPeers = %d, need >= 1", c.NumCollectorPeers)
	case c.SamplingRate < 1:
		return fmt.Errorf("scenario: SamplingRate = %d, need >= 1", c.SamplingRate)
	case c.Duration < time.Hour:
		return fmt.Errorf("scenario: Duration = %v, need >= 1h", c.Duration)
	}
	return nil
}
