package scenario

import (
	"spoofscope/internal/netx"
)

// LinkRouterAddrs returns the router interface addresses the AS's border
// routers use on links toward its providers. Following operational
// practice, the link subnet is numbered out of the *provider's* first
// announced block (provider-assigned link space), so these addresses are
// routed but attributed to the provider's origin — exactly the stray
// source addresses of §5.2 that land in Invalid.
//
// The derivation is deterministic, so the traffic generator (which uses
// them as stray ICMP sources) and the traceroute substrate (which must
// rediscover them) agree without sharing state.
func (s *Scenario) LinkRouterAddrs(asIdx int) []netx.Addr {
	var out []netx.Addr
	a := &s.topo.ases[asIdx]
	for _, p := range a.Providers {
		prov := &s.topo.ases[p]
		if len(prov.Announced) == 0 {
			continue
		}
		block := prov.Announced[0]
		// Each customer gets a /30-equivalent slot near the top of the
		// provider block, indexed by its dense index for determinism.
		slot := uint32(asIdx%4096)*4 + 2
		addr := block.Last() - netx.Addr(slot)
		if addr < block.First() {
			addr = block.First() + netx.Addr(slot%uint32(block.NumAddrs()))
		}
		out = append(out, addr)
	}
	return out
}

// AllRouterAddrs returns every link router address in the topology,
// deduplicated — the ground-truth pool the traceroute substrate samples.
func (s *Scenario) AllRouterAddrs() []netx.Addr {
	seen := make(map[netx.Addr]bool)
	var out []netx.Addr
	for i := range s.topo.ases {
		for _, a := range s.LinkRouterAddrs(i) {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}
