package scenario

// TrafficPath returns the ground-truth AS-level forwarding path (dense
// indices, source first) that traffic from the AS at index 'from' takes
// toward the announced space of AS 'to', or nil if 'from' has no route.
// Traffic follows the reverse of the best valley-free announcement path.
func (s *Scenario) TrafficPath(from, to int) []int {
	rt := s.treeFor(to)
	if rt.class[from] == classNone && from != to {
		return nil
	}
	var out []int
	for x := from; ; {
		out = append(out, x)
		if x == to {
			return out
		}
		nx := rt.next[x]
		if nx < 0 || len(out) > len(s.topo.ases) {
			return nil
		}
		x = int(nx)
	}
}

// treeFor caches full-export routing trees by origin.
func (s *Scenario) treeFor(origin int) *routeTree {
	if s.treeCache == nil {
		s.treeCache = make(map[int]*routeTree)
	}
	if rt, ok := s.treeCache[origin]; ok {
		return rt
	}
	rt := s.topo.propagate(origin, nil)
	s.treeCache[origin] = rt
	return rt
}
