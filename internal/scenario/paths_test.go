package scenario

import (
	"testing"
)

func TestTrafficPathBasics(t *testing.T) {
	s := buildSmall(t)
	// Traffic from every member to the measurement server follows a
	// connected, loop-free path ending at the server.
	for _, m := range s.Members {
		path := s.TrafficPath(m.ASIndex, s.MeasurementServer)
		if path == nil {
			t.Fatalf("member %s has no path to the server", m.ASN)
		}
		if path[0] != m.ASIndex || path[len(path)-1] != s.MeasurementServer {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		seen := map[int]bool{}
		for i, hop := range path {
			if seen[hop] {
				t.Fatalf("loop in path %v", path)
			}
			seen[hop] = true
			if i == 0 {
				continue
			}
			// Each hop pair is an actual topology link (any relation).
			prev := path[i-1]
			linked := contains(s.ASInfo(prev).Providers, hop) ||
				contains(s.ASInfo(prev).Customers, hop) ||
				contains(s.ASInfo(prev).Peers, hop) ||
				contains(s.ASInfo(prev).VisibleSiblings, hop)
			if !linked {
				t.Fatalf("non-link hop %d->%d in path", prev, hop)
			}
		}
	}
}

func TestTrafficPathSelf(t *testing.T) {
	s := buildSmall(t)
	path := s.TrafficPath(s.MeasurementServer, s.MeasurementServer)
	if len(path) != 1 || path[0] != s.MeasurementServer {
		t.Fatalf("self path = %v", path)
	}
}

func TestTrafficPathCached(t *testing.T) {
	s := buildSmall(t)
	a := s.TrafficPath(s.Members[0].ASIndex, s.MeasurementServer)
	b := s.TrafficPath(s.Members[0].ASIndex, s.MeasurementServer)
	if len(a) != len(b) {
		t.Fatal("cached tree changed the path")
	}
}

func TestLinkRouterAddrs(t *testing.T) {
	s := buildSmall(t)
	for _, m := range s.Members {
		addrs := s.LinkRouterAddrs(m.ASIndex)
		provs := s.ASInfo(m.ASIndex).Providers
		if len(addrs) > len(provs) {
			t.Fatalf("more router addrs (%d) than providers (%d)", len(addrs), len(provs))
		}
		for i, a := range addrs {
			// Each link address is numbered out of the corresponding
			// provider's first announced block.
			prov := s.ASInfo(provs[i])
			if len(prov.Announced) == 0 {
				continue
			}
			if !prov.Announced[0].Contains(a) {
				t.Fatalf("router addr %v outside provider block %v", a, prov.Announced[0])
			}
		}
	}
	// Determinism.
	a1 := s.LinkRouterAddrs(s.Members[0].ASIndex)
	a2 := s.LinkRouterAddrs(s.Members[0].ASIndex)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("router addrs not deterministic")
		}
	}
}

func TestAllRouterAddrsDeduped(t *testing.T) {
	s := buildSmall(t)
	all := s.AllRouterAddrs()
	if len(all) == 0 {
		t.Fatal("no router addrs")
	}
	seen := map[uint32]bool{}
	for _, a := range all {
		if seen[uint32(a)] {
			t.Fatalf("duplicate router addr %v", a)
		}
		seen[uint32(a)] = true
	}
}
