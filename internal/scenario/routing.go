package scenario

import (
	"sort"

	"spoofscope/internal/bgp"
	"spoofscope/internal/netx"
)

// Route classes in preference order (higher preferred), following the
// standard Gao-Rexford model: routes learned from customers beat routes
// learned from peers beat routes learned from providers.
const (
	classNone     int8 = 0
	classProvider int8 = 1
	classPeer     int8 = 2
	classCustomer int8 = 3
	classSelf     int8 = 4
)

// routeTree is the result of propagating one origin's announcement through
// the topology: per AS, the best route class, path length, and next hop
// toward the origin.
type routeTree struct {
	origin int
	class  []int8
	dist   []int32
	next   []int32
}

// exportFilter restricts the origin's own first-hop exports (selective
// announcement). nil means export to all neighbours.
type exportFilter map[int]bool

func (f exportFilter) allows(neighbor int) bool {
	if f == nil {
		return true
	}
	return f[neighbor]
}

// propagate computes the valley-free routing tree for origin. Neighbour
// orderings are deterministic, so the tree (and therefore every AS path)
// is reproducible.
func (t *topology) propagate(origin int, filter exportFilter) *routeTree {
	n := len(t.ases)
	rt := &routeTree{
		origin: origin,
		class:  make([]int8, n),
		dist:   make([]int32, n),
		next:   make([]int32, n),
	}
	for i := range rt.next {
		rt.next[i] = -1
		rt.dist[i] = 1 << 30
	}
	rt.class[origin] = classSelf
	rt.dist[origin] = 0

	// Phase 1 — customer routes climb provider chains (BFS, unit weights).
	// Visible org-sibling links provide mutual transit: a sibling adopts
	// the route as if learned from a customer and re-exports it upward,
	// making these internal links broadly visible on AS paths.
	queue := []int{origin}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, p := range sortedCopy(t.ases[x].Providers) {
			if x == origin && !filter.allows(p) {
				continue
			}
			if rt.class[p] >= classCustomer {
				continue
			}
			rt.class[p] = classCustomer
			rt.dist[p] = rt.dist[x] + 1
			rt.next[p] = int32(x)
			queue = append(queue, p)
		}
		for _, sib := range sortedCopy(t.ases[x].VisibleSiblings) {
			if x == origin && !filter.allows(sib) {
				continue
			}
			if rt.class[sib] >= classCustomer {
				continue
			}
			rt.class[sib] = classCustomer
			rt.dist[sib] = rt.dist[x] + 1
			rt.next[sib] = int32(x)
			queue = append(queue, sib)
		}
	}

	// Phase 2 — one peering hop from any customer-route holder (or the
	// origin itself).
	holders := append([]int(nil), queue...)
	for _, x := range holders {
		for _, q := range sortedCopy(t.ases[x].Peers) {
			if x == origin && !filter.allows(q) {
				continue
			}
			if rt.class[q] >= classPeer {
				continue
			}
			rt.class[q] = classPeer
			rt.dist[q] = rt.dist[x] + 1
			rt.next[q] = int32(x)
		}
	}

	// Phase 3 — provider routes descend customer links from every route
	// holder, in distance order (bucket queue; all edges weigh 1).
	maxDist := int32(n + 1)
	buckets := make([][]int, maxDist+2)
	for i := 0; i < n; i++ {
		if rt.class[i] != classNone {
			d := rt.dist[i]
			if d > maxDist {
				d = maxDist
			}
			buckets[d] = append(buckets[d], i)
		}
	}
	for d := int32(0); d <= maxDist; d++ {
		// Deterministic processing order within a distance level.
		sort.Slice(buckets[d], func(i, j int) bool {
			return t.ases[buckets[d][i]].ASN < t.ases[buckets[d][j]].ASN
		})
		for _, x := range buckets[d] {
			if rt.dist[x] != d {
				continue // superseded (only possible for stale entries)
			}
			down := append(sortedCopy(t.ases[x].Customers), sortedCopy(t.ases[x].VisibleSiblings)...)
			for _, c := range down {
				if x == origin && !filter.allows(c) {
					continue
				}
				if rt.class[c] != classNone {
					continue
				}
				rt.class[c] = classProvider
				rt.dist[c] = d + 1
				rt.next[c] = int32(x)
				if d+1 <= maxDist {
					buckets[d+1] = append(buckets[d+1], c)
				}
			}
		}
	}
	return rt
}

// path returns the AS path as observed at vantage (vantage leftmost,
// origin rightmost), or nil if the vantage has no route.
func (rt *routeTree) path(t *topology, vantage int) []bgp.ASN {
	if rt.class[vantage] == classNone {
		return nil
	}
	var out []bgp.ASN
	for x := vantage; ; {
		out = append(out, t.ases[x].ASN)
		if x == rt.origin {
			return out
		}
		nx := rt.next[x]
		if nx < 0 || len(out) > len(t.ases) {
			return nil // defensive: broken tree
		}
		x = int(nx)
	}
}

// announcementSet computes all (prefix, path) observations for the given
// vantage ASes (route collector peers) and member ASes (route server
// sessions: members export their own and customer routes).
func (t *topology) announcementSet(collectors, members []int) []bgp.Announcement {
	memberList := sortedCopy(members)
	var anns []bgp.Announcement
	add := func(p netx.Prefix, path []bgp.ASN) {
		if path == nil {
			return
		}
		anns = append(anns, bgp.Announcement{
			Prefix: p,
			Path:   path,
			Origin: path[len(path)-1],
		})
	}

	for oi := range t.ases {
		o := &t.ases[oi]
		if len(o.Announced) == 0 {
			continue
		}
		// Group prefixes by export filter (nil for full export).
		full := o.Announced[:0:0]
		for _, p := range o.Announced {
			if o.SelectiveExport == nil || o.SelectiveExport[p] == nil {
				full = append(full, p)
			}
		}
		if len(full) > 0 {
			rt := t.propagate(oi, nil)
			for _, p := range full {
				t.emitVantages(rt, p, collectors, memberList, add)
			}
		}
		// Deterministic iteration over the (small) selective-export map.
		selective := make([]netx.Prefix, 0, len(o.SelectiveExport))
		for p := range o.SelectiveExport {
			selective = append(selective, p)
		}
		sort.Slice(selective, func(i, j int) bool {
			return selective[i].Compare(selective[j]) < 0
		})
		for _, p := range selective {
			f := make(exportFilter)
			for _, a := range o.SelectiveExport[p] {
				f[a] = true
			}
			rt := t.propagate(oi, f)
			// Selectively-announced prefixes are not announced at the IXP
			// route server either (the origin exports them to one provider
			// only) — the naive approach therefore misses them entirely,
			// the paper's §3.2 asymmetric-announcement blind spot.
			t.emitVantages(rt, p, collectors, nil, add)
		}
	}
	return anns
}

// emitVantages emits one prefix's paths at all vantages.
func (t *topology) emitVantages(rt *routeTree, p netx.Prefix, collectors, members []int, add func(netx.Prefix, []bgp.ASN)) {
	for _, c := range collectors {
		add(p, rt.path(t, c))
	}
	// Route server: members announce own + customer routes — but, as at
	// real route servers, not exhaustively: members apply per-prefix RS
	// export policies, so a deterministic ~30% of customer routes stay
	// bilateral-only and never appear in the RS view (~45% here). (This is one of the
	// drivers of the Naive approach's false positives.)
	for _, m := range members {
		if m == rt.origin {
			add(p, rt.path(t, m))
			continue
		}
		if rt.class[m] != classCustomer {
			continue
		}
		path := rt.path(t, m)
		// Direct customer routes (2-hop paths) are always announced — the
		// bilateral session exists precisely to reach that customer. Deeper
		// cone routes are subject to the export policy.
		if len(path) == 2 || rsExports(m, p) {
			add(p, path)
		}
	}
}

// rsExports is a deterministic pseudo-random RS export policy.
func rsExports(member int, p netx.Prefix) bool {
	h := uint32(member)*2654435761 ^ uint32(p.Addr)>>8 ^ uint32(p.Bits)<<20
	h ^= h >> 13
	h *= 0x85ebca6b
	h ^= h >> 16
	return h%100 < 55
}
