package scenario

import (
	"bytes"
	"math/rand"
	"testing"

	"spoofscope/internal/bgp"
	"spoofscope/internal/bogon"
	"spoofscope/internal/netx"
)

func buildSmall(t *testing.T) *Scenario {
	t.Helper()
	s, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := SmallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.NumMembers = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("NumMembers=1 accepted")
	}
	bad = good
	bad.SamplingRate = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("SamplingRate=0 accepted")
	}
}

func TestTopologyInvariants(t *testing.T) {
	s := buildSmall(t)
	bogons := bogon.NewReferenceSet()
	for i := 0; i < s.NumASes(); i++ {
		a := s.ASInfo(i)
		// Relationship symmetry.
		for _, p := range a.Providers {
			if !contains(s.ASInfo(p).Customers, i) {
				t.Fatalf("provider link asymmetric: %s", a.ASN)
			}
		}
		for _, q := range a.Peers {
			if !contains(s.ASInfo(q).Peers, i) {
				t.Fatalf("peer link asymmetric: %s", a.ASN)
			}
		}
		// Everyone except tier-1 has a provider.
		if a.Tier != Tier1 && len(a.Providers) == 0 {
			t.Fatalf("%s (%v) has no provider", a.ASN, a.Tier)
		}
		if a.Tier == Tier1 && len(a.Providers) != 0 {
			t.Fatalf("tier-1 %s has a provider", a.ASN)
		}
		// No prefix overlaps bogon space.
		for _, p := range append(append([]netx.Prefix(nil), a.Announced...), a.Held...) {
			if bogons.Contains(p.First()) || bogons.Contains(p.Last()) {
				t.Fatalf("%s allocated bogon-overlapping %v", a.ASN, p)
			}
		}
	}
}

func TestAddressAllocationDisjointAcrossASes(t *testing.T) {
	s := buildSmall(t)
	// Primary (non-PA) blocks must be disjoint across ASes. PA slices are
	// nested inside provider blocks by construction, so check held +
	// first announced block only.
	var ivs []netx.Interval
	for i := 0; i < s.NumASes(); i++ {
		a := s.ASInfo(i)
		ps := a.Held
		if len(a.Announced) > 0 {
			ps = append(append([]netx.Prefix(nil), a.Announced[0]), a.Held...)
		}
		for _, p := range ps {
			ivs = append(ivs, netx.IntervalOf(p))
		}
	}
	set := netx.NewIntervalSet(ivs...)
	var sum uint64
	for _, iv := range ivs {
		sum += iv.Len()
	}
	if set.NumAddrs() != sum {
		t.Fatalf("allocation overlap: union %d != sum %d", set.NumAddrs(), sum)
	}
}

func TestBuildDeterminism(t *testing.T) {
	a, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumASes() != b.NumASes() || len(a.Anns) != len(b.Anns) {
		t.Fatalf("non-deterministic build: %v vs %v", a, b)
	}
	for i := range a.Anns {
		x, y := a.Anns[i], b.Anns[i]
		if x.Prefix != y.Prefix || x.Origin != y.Origin || len(x.Path) != len(y.Path) {
			t.Fatalf("announcement %d differs: %v vs %v", i, x, y)
		}
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			t.Fatalf("member %d differs", i)
		}
	}
}

func TestRoutingValleyFree(t *testing.T) {
	s := buildSmall(t)
	// Classify each adjacent pair on every path against ground truth and
	// check the up*-peer?-down* shape.
	relOf := func(l, r int) string {
		la := s.ASInfo(l)
		switch {
		case contains(la.VisibleSiblings, r):
			// Mutual transit: siblings carry each other's routes in any
			// phase without counting as a valley.
			return "sib"
		case contains(la.Providers, r):
			return "up"
		case contains(la.Customers, r):
			return "down"
		case contains(la.Peers, r):
			return "peer"
		default:
			return "?"
		}
	}
	for _, a := range s.Anns {
		// Path is vantage...origin; traffic direction origin->vantage is
		// the reverse. Walk origin->vantage (right to left): phases
		// up* peer? down*.
		phase := 0 // 0=climbing, 1=after peer, 2=descending
		for i := len(a.Path) - 1; i > 0; i-- {
			l := s.ASNIndex(a.Path[i])   // closer to origin
			r := s.ASNIndex(a.Path[i-1]) // next toward vantage
			rel := relOf(l, r)
			switch rel {
			case "sib":
				// Phase-transparent.
			case "up":
				if phase != 0 {
					t.Fatalf("valley in path %v (up after phase %d)", a.Path, phase)
				}
			case "peer":
				if phase != 0 {
					t.Fatalf("second peak in path %v", a.Path)
				}
				phase = 1
			case "down":
				phase = 2
			default:
				t.Fatalf("unknown link %s-%s in path %v", a.Path[i], a.Path[i-1], a.Path)
			}
		}
	}
}

func TestRoutingPrefersCustomerRoutes(t *testing.T) {
	s := buildSmall(t)
	// For every announcement path, the vantage's next hop toward a
	// customer-cone origin must itself be inside the vantage's cone.
	for _, a := range s.Anns {
		v := s.ASNIndex(a.Path[0])
		o := s.ASNIndex(a.Origin)
		// Selectively-exported prefixes legitimately dodge customer routes.
		if s.ASInfo(o).SelectiveExport[a.Prefix] != nil {
			continue
		}
		cone := s.CustomerConeIndices(v)
		inCone := contains(cone, o)
		if inCone && len(a.Path) > 1 {
			nh := s.ASNIndex(a.Path[1])
			if !contains(cone, nh) {
				t.Fatalf("vantage %s reaches cone origin %s via non-cone %s",
					a.Path[0], a.Origin, a.Path[1])
			}
		}
	}
}

func TestSelectiveExportRestrictsPaths(t *testing.T) {
	cfg := SmallConfig()
	cfg.SelectiveAnnounceFraction = 1.0 // force selective announcers
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < s.NumASes(); i++ {
		a := s.ASInfo(i)
		for p, allowed := range a.SelectiveExport {
			found = true
			// Every observed path for p must go through the allowed
			// provider as the penultimate hop.
			for _, ann := range s.Anns {
				if ann.Prefix != p || ann.Origin != a.ASN || len(ann.Path) < 2 {
					continue
				}
				penult := s.ASNIndex(ann.Path[len(ann.Path)-2])
				if !contains(allowed, penult) {
					t.Fatalf("selective prefix %v leaked via %s", p, ann.Path[len(ann.Path)-2])
				}
			}
		}
	}
	if !found {
		t.Skip("no selective announcers materialized")
	}
}

func TestMembersShape(t *testing.T) {
	s := buildSmall(t)
	if len(s.Members) != s.Cfg.NumMembers {
		t.Fatalf("members = %d", len(s.Members))
	}
	ports := map[uint32]bool{}
	clean, all3 := 0, 0
	for _, m := range s.Members {
		if ports[m.Port] {
			t.Fatalf("duplicate port %d", m.Port)
		}
		ports[m.Port] = true
		if got := s.MemberByPort(m.Port); got == nil || got.ASN != m.ASN {
			t.Fatalf("MemberByPort(%d) broken", m.Port)
		}
		if got := s.MemberByASN(m.ASN); got == nil || got.Port != m.Port {
			t.Fatalf("MemberByASN(%s) broken", m.ASN)
		}
		if !m.EmitsBogon && !m.EmitsUnrouted && !m.EmitsInvalid {
			clean++
		}
		if m.EmitsBogon && m.EmitsUnrouted && m.EmitsInvalid {
			all3++
		}
	}
	// Figure 5 shape: clean ≈ 18%, all-three ≈ 28% (generous tolerance for
	// a small sample).
	n := float64(len(s.Members))
	if f := float64(clean) / n; f < 0.08 || f > 0.40 {
		t.Errorf("clean members = %.2f, want ~0.18-0.25", f)
	}
	if f := float64(all3) / n; f < 0.10 || f > 0.45 {
		t.Errorf("all-three members = %.2f, want ~0.28", f)
	}
	if s.MemberByPort(9999) != nil {
		t.Error("MemberByPort invented a member")
	}
}

func TestAttackPlanShape(t *testing.T) {
	s := buildSmall(t)
	if len(s.Attack.NTPVictims) != 10 {
		t.Fatalf("NTP victims = %d", len(s.Attack.NTPVictims))
	}
	if len(s.Attack.NTPAmplifiers) < 100 {
		t.Fatalf("amplifiers = %d", len(s.Attack.NTPAmplifiers))
	}
	// Exactly one dominant NTP attacker with weight ~0.92.
	dominant := 0
	var totalW float64
	for _, m := range s.Members {
		totalW += m.NTPAttackWeight
		if m.NTPAttackWeight > 0.9 {
			dominant++
		}
	}
	if dominant != 1 {
		t.Fatalf("dominant NTP attackers = %d", dominant)
	}
	if totalW < 0.95 || totalW > 1.05 {
		t.Fatalf("total NTP weight = %f", totalW)
	}
	// Scan list overlaps amplifiers partially (not fully, not zero).
	amp := make(map[netx.Addr]bool)
	for _, a := range s.Attack.NTPAmplifiers {
		amp[a] = true
	}
	overlap := 0
	for _, a := range s.Attack.ScanList {
		if amp[a] {
			overlap++
		}
	}
	if overlap == 0 || overlap == len(s.Attack.NTPAmplifiers) {
		t.Fatalf("scan overlap = %d of %d", overlap, len(s.Attack.NTPAmplifiers))
	}
}

func TestSourcePool(t *testing.T) {
	s := buildSmall(t)
	for i := range s.Members {
		m := &s.Members[i]
		pool := s.SourcePool(m, 200)
		if len(pool) == 0 {
			t.Fatalf("member %s has empty source pool", m.ASN)
		}
		// Own announced space must be in the pool.
		own := s.ASInfo(m.ASIndex).Announced
		if len(own) > 0 {
			found := false
			for _, p := range pool {
				if p == own[0] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("member %s pool missing own prefix", m.ASN)
			}
		}
	}
}

func TestWriteMRTRoundTrip(t *testing.T) {
	s := buildSmall(t)
	var buf bytes.Buffer
	if err := s.WriteMRT(&buf); err != nil {
		t.Fatal(err)
	}
	rib := bgp.NewRIB()
	if err := rib.LoadMRT(&buf); err != nil {
		t.Fatal(err)
	}
	// Every distinct (prefix, path) of the scenario must survive the MRT
	// round trip into the RIB.
	want := make(map[string]bool)
	for _, a := range s.Anns {
		if a.Prefix.Bits >= 8 && a.Prefix.Bits <= 24 {
			want[announcementKeyForTest(a)] = true
		}
	}
	got := make(map[string]bool)
	for _, a := range rib.Announcements() {
		got[announcementKeyForTest(a)] = true
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("announcement lost in MRT round trip")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("RIB has %d announcements, scenario %d", len(got), len(want))
	}
}

func announcementKeyForTest(a bgp.Announcement) string {
	b := make([]byte, 0, 64)
	b = append(b, byte(a.Prefix.Addr>>24), byte(a.Prefix.Addr>>16),
		byte(a.Prefix.Addr>>8), byte(a.Prefix.Addr), a.Prefix.Bits)
	for _, as := range a.Path {
		b = append(b, byte(as>>24), byte(as>>16), byte(as>>8), byte(as))
	}
	return string(b)
}

func TestUnroutedSpaceExists(t *testing.T) {
	s := buildSmall(t)
	held := s.AllHeldPrefixes()
	if len(held) == 0 {
		t.Fatal("no held (unrouted) prefixes")
	}
	// Held space is inside routable but must not be announced.
	announced := make(map[netx.Prefix]bool)
	for i := 0; i < s.NumASes(); i++ {
		for _, p := range s.ASInfo(i).Announced {
			announced[p] = true
		}
	}
	for _, h := range held {
		if announced[h] {
			t.Fatalf("held prefix %v also announced", h)
		}
		if !s.RoutableSpace().Contains(h.First()) {
			t.Fatalf("held prefix %v outside routable space", h)
		}
	}
}

func TestPropagateHandlesDisconnectedOrigin(t *testing.T) {
	// An origin whose only provider is excluded by the filter reaches
	// nobody.
	cfg := SmallConfig()
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a single-homed stub.
	for i := 0; i < s.NumASes(); i++ {
		a := s.ASInfo(i)
		if a.Tier == Stub && len(a.Providers) == 1 && len(a.Peers) == 0 && len(a.Customers) == 0 {
			rt := s.topo.propagate(i, exportFilter{})
			for v := 0; v < s.NumASes(); v++ {
				if v != i && rt.class[v] != classNone {
					t.Fatalf("filtered origin still reached %s", s.ASInfo(v).ASN)
				}
			}
			return
		}
	}
	t.Skip("no single-homed stub found")
}

func TestCustomerConeIndicesSorted(t *testing.T) {
	s := buildSmall(t)
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 20; k++ {
		i := rng.Intn(s.NumASes())
		cone := s.CustomerConeIndices(i)
		if !contains(cone, i) {
			t.Fatal("cone must include self")
		}
		for j := 1; j < len(cone); j++ {
			if cone[j-1] >= cone[j] {
				t.Fatal("cone not sorted")
			}
		}
	}
}
