package scenario

// A fast synthetic global routing table for build-performance work. The
// full simulation in Build propagates routes per origin across the whole
// topology (O(V^2) at full-table scale: fine for ~6K ASes, hopeless for
// 50K). SynthesizeTable skips route propagation entirely: the topology is
// a provider DAG with memoized first-provider chains to the tier-1 clique,
// and each announcement's AS path is assembled as vantage-up-chain +
// tier-1 peering hop + reversed origin chain. The result has the
// statistical shape pipeline compilation cares about — tens of thousands
// of ASes, hundreds of thousands of distinct (prefix, path) observations,
// multihoming so relationship inference has real votes — and synthesizes
// in well under a second, so benchmarks can rebuild it per run instead of
// shipping a multi-hundred-megabyte MRT fixture.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"spoofscope/internal/bgp"
	"spoofscope/internal/netx"
)

// SynthTableConfig parameterizes SynthesizeTable. The zero value is
// unusable; start from FullTableConfig.
type SynthTableConfig struct {
	Seed int64

	// Topology sizes: a tier-1 clique, transit providers below it, stubs
	// at the edge. ASNs are assigned per tier (10+i, 1000+i, 10000+i).
	NumTier1   int
	NumTransit int
	NumStub    int

	// VantagesPerOrigin is how many collector vantages observe each
	// origin's announcements (distinct paths per prefix).
	VantagesPerOrigin int

	// NumMembers sizes the member sample drawn from transits and stubs.
	NumMembers int
}

// FullTableConfig approximates a full-table IXP view: ~50K ASes and a few
// hundred thousand announcements, the scale at which cold pipeline builds
// earn their worker pool.
func FullTableConfig() SynthTableConfig {
	return SynthTableConfig{
		Seed:              1,
		NumTier1:          12,
		NumTransit:        3000,
		NumStub:           47000,
		VantagesPerOrigin: 4,
		NumMembers:        800,
	}
}

// Validate reports configuration errors early.
func (c SynthTableConfig) Validate() error {
	switch {
	case c.NumTier1 < 2:
		return fmt.Errorf("scenario: synth NumTier1 = %d, need >= 2", c.NumTier1)
	case c.NumTransit < 2:
		return fmt.Errorf("scenario: synth NumTransit = %d, need >= 2", c.NumTransit)
	case c.NumStub < 1:
		return fmt.Errorf("scenario: synth NumStub = %d, need >= 1", c.NumStub)
	case c.VantagesPerOrigin < 1:
		return fmt.Errorf("scenario: synth VantagesPerOrigin = %d, need >= 1", c.VantagesPerOrigin)
	case c.NumMembers < 1:
		return fmt.Errorf("scenario: synth NumMembers = %d, need >= 1", c.NumMembers)
	}
	return nil
}

// SynthTable is the synthesized routing view.
type SynthTable struct {
	Cfg SynthTableConfig
	// Anns is the distinct (prefix, AS path) observation set.
	Anns []bgp.Announcement
	// MemberASNs is a deterministic member sample (transits and stubs).
	MemberASNs []bgp.ASN
	// NumASes counts every ASN appearing in the topology.
	NumASes int
}

// SynthesizeTable builds the table. Deterministic given Cfg.Seed.
func SynthesizeTable(cfg SynthTableConfig) (*SynthTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	tier1 := make([]bgp.ASN, cfg.NumTier1)
	for i := range tier1 {
		tier1[i] = bgp.ASN(10 + i)
	}
	transit := make([]bgp.ASN, cfg.NumTransit)
	for i := range transit {
		transit[i] = bgp.ASN(1000 + i)
	}

	// Provider DAG over transits: early transits attach straight to the
	// tier-1 clique, later ones to a transit in the first half of their
	// index range, so chain depth grows logarithmically. chain[i] is the
	// memoized up-path from transit i to (and including) its tier-1.
	prov := make([]int, cfg.NumTransit) // provider transit index, -1 = tier-1
	t1of := make([]int, cfg.NumTransit) // tier-1 index terminating the chain
	chain := make([][]bgp.ASN, cfg.NumTransit)
	second := make([]int, cfg.NumTransit) // second provider, -2 = none
	for i := 0; i < cfg.NumTransit; i++ {
		if i < cfg.NumTier1*4 || i < 2 {
			prov[i] = -1
			t1of[i] = rng.Intn(cfg.NumTier1)
			chain[i] = []bgp.ASN{transit[i], tier1[t1of[i]]}
		} else {
			p := rng.Intn(i / 2)
			prov[i] = p
			t1of[i] = t1of[p]
			chain[i] = append([]bgp.ASN{transit[i]}, chain[p]...)
		}
		second[i] = -2
		if i >= 2 && i%3 == 0 {
			// Multihomed transit: an independent second provider gives the
			// relationship inference genuine cross-links.
			if s := rng.Intn(i); s != prov[i] {
				second[i] = s
			}
		}
	}

	// Vantages: route-collector peers drawn from well-connected transits.
	nVant := 4 * cfg.VantagesPerOrigin
	if nVant > cfg.NumTransit {
		nVant = cfg.NumTransit
	}
	vantages := make([]int, nVant)
	for i := range vantages {
		vantages[i] = rng.Intn(cfg.NumTransit)
	}

	// Address allocation: a cursor over unicast space, aligned per prefix.
	cur := uint32(0x01000000)
	alloc := func(bits uint8) netx.Prefix {
		size := uint32(1) << (32 - bits)
		cur = (cur + size - 1) &^ (size - 1)
		p := netx.Prefix{Addr: netx.Addr(cur), Bits: bits}
		cur += size
		return p
	}

	// assemble builds the AS path seen at vantage v for an origin whose
	// up-chain (origin first, tier-1 last) is oc: vantage up-chain, a
	// tier-1 peering hop when the chains peak at different tier-1s, then
	// the origin chain walked back down.
	path := make([]bgp.ASN, 0, 16)
	assemble := func(v int, oc []bgp.ASN) []bgp.ASN {
		up := chain[v]
		path = path[:0]
		path = append(path, up...)
		top := len(oc) - 1
		if oc[top] == up[len(up)-1] {
			top-- // same tier-1: no peering hop
		}
		for i := top; i >= 0; i-- {
			path = append(path, oc[i])
		}
		out := make([]bgp.ASN, len(path))
		copy(out, path)
		return out
	}

	st := &SynthTable{Cfg: cfg, NumASes: cfg.NumTier1 + cfg.NumTransit + cfg.NumStub}
	st.Anns = make([]bgp.Announcement, 0,
		(cfg.NumTransit+cfg.NumStub)*(cfg.VantagesPerOrigin+1))

	announce := func(p netx.Prefix, oc []bgp.ASN) {
		for k := 0; k < cfg.VantagesPerOrigin; k++ {
			v := vantages[rng.Intn(len(vantages))]
			st.Anns = append(st.Anns, bgp.Announcement{
				Prefix: p, Path: assemble(v, oc), Origin: oc[0],
			})
		}
	}

	// Transit origins: one prefix each, announced through the primary
	// chain, plus through the second provider when multihomed.
	for i := 0; i < cfg.NumTransit; i++ {
		p := alloc(uint8(19 + rng.Intn(4)))
		announce(p, chain[i])
		if s := second[i]; s >= 0 {
			alt := append([]bgp.ASN{transit[i]}, chain[s]...)
			announce(p, alt)
		}
	}

	// Stub origins: ASN 10000+s, one or two providers among the transits,
	// one prefix (every eighth stub holds a second, more specific one).
	oc := make([]bgp.ASN, 0, 16)
	for s := 0; s < cfg.NumStub; s++ {
		asn := bgp.ASN(10000 + s)
		p1 := rng.Intn(cfg.NumTransit)
		oc = append(oc[:0], asn)
		oc = append(oc, chain[p1]...)
		origin := append([]bgp.ASN(nil), oc...)
		p := alloc(uint8(20 + rng.Intn(5)))
		announce(p, origin)
		if s%4 == 0 {
			p2 := rng.Intn(cfg.NumTransit)
			if p2 != p1 {
				alt := append([]bgp.ASN{asn}, chain[p2]...)
				announce(p, alt)
			}
		}
		if s%8 == 0 {
			announce(alloc(24), origin)
		}
	}

	// Member sample: a deterministic stride over stubs, topped up with
	// transits, mirroring real IXP membership (edge-heavy).
	for s := 0; s < cfg.NumStub && len(st.MemberASNs) < cfg.NumMembers*3/4; s += 1 + cfg.NumStub/cfg.NumMembers {
		st.MemberASNs = append(st.MemberASNs, bgp.ASN(10000+s))
	}
	for i := 0; i < cfg.NumTransit && len(st.MemberASNs) < cfg.NumMembers; i += 1 + 4*cfg.NumTransit/cfg.NumMembers {
		st.MemberASNs = append(st.MemberASNs, transit[i])
	}
	return st, nil
}

// RIB digests the announcement set into a fresh RIB (the same entry point
// MRT ingestion uses, minus the serialization round trip).
func (st *SynthTable) RIB() *bgp.RIB {
	rib := bgp.NewRIB()
	for _, a := range st.Anns {
		rib.AddAnnouncement(a.Prefix, a.Path)
	}
	return rib
}

// WriteMRT serializes the table as an MRT stream (peer index table plus
// RIB records grouped by prefix), loadable by bgp.RIB.LoadMRT and
// cmd/classify.
func (st *SynthTable) WriteMRT(w io.Writer) error {
	mw := bgp.NewWriter(w)
	ts := time.Date(2017, 2, 5, 0, 0, 0, 0, time.UTC)

	table := &bgp.PeerIndexTable{
		CollectorID: netx.AddrFrom4(198, 51, 100, 2),
		ViewName:    "spoofscope-synth",
	}
	peerIdx := make(map[bgp.ASN]uint16)
	for _, a := range st.Anns {
		v := a.Path[0]
		if _, ok := peerIdx[v]; ok {
			continue
		}
		i := uint16(len(table.Peers))
		peerIdx[v] = i
		table.Peers = append(table.Peers, bgp.Peer{
			BGPID: netx.Addr(0x0a010000 + uint32(i)),
			Addr:  netx.Addr(0xc6336501 + uint32(i)),
			AS:    v,
		})
	}
	if err := mw.WritePeerIndexTable(ts, table); err != nil {
		return err
	}

	byPrefix := make(map[netx.Prefix][]int)
	var order []netx.Prefix
	for i, a := range st.Anns {
		if _, ok := byPrefix[a.Prefix]; !ok {
			order = append(order, a.Prefix)
		}
		byPrefix[a.Prefix] = append(byPrefix[a.Prefix], i)
	}
	for seq, p := range order {
		rec := &bgp.RIBRecord{Sequence: uint32(seq), Prefix: p}
		for _, i := range byPrefix[p] {
			a := st.Anns[i]
			pi := peerIdx[a.Path[0]]
			rec.Entries = append(rec.Entries, bgp.RIBEntry{
				PeerIndex:      pi,
				OriginatedTime: ts,
				Attrs: bgp.Attributes{
					Origin:  bgp.OriginIGP,
					ASPath:  []bgp.PathSegment{{Type: bgp.SegmentSequence, ASNs: a.Path}},
					NextHop: table.Peers[pi].Addr,
				},
			})
		}
		if err := mw.WriteRIB(ts, rec); err != nil {
			return err
		}
	}
	return mw.Flush()
}
