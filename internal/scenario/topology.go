package scenario

import (
	"math/rand"
	"sort"

	"spoofscope/internal/bgp"
	"spoofscope/internal/bogon"
	"spoofscope/internal/netx"
	"spoofscope/internal/org"
)

// Tier is an AS's position in the synthetic hierarchy.
type Tier int

// Hierarchy tiers.
const (
	Tier1 Tier = iota
	Transit
	Stub
)

func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	default:
		return "stub"
	}
}

// AS is one synthesized autonomous system with its ground truth.
type AS struct {
	ASN  bgp.ASN
	Tier Tier

	// Dense indices of neighbours, by relationship (ground truth).
	Providers []int
	Customers []int
	Peers     []int
	// Siblings are same-organization ASes (all pairs of the org).
	Siblings []int
	// VisibleSiblings are the subset connected by BGP-visible internal
	// links over which the two ASes provide mutual transit. The remaining
	// sibling pairs exchange traffic over links invisible to every
	// inference approach.
	VisibleSiblings []int

	// Announced prefixes (origined into BGP) and held prefixes (allocated
	// but never announced — sources drawing from them appear Unrouted).
	Announced []netx.Prefix
	Held      []netx.Prefix

	// SelectiveExport, when non-nil, maps a prefix to the subset of
	// provider indices it is announced to (the paper's §4.4 asymmetric
	// multihoming). Prefixes not in the map export everywhere.
	SelectiveExport map[netx.Prefix][]int

	OrgIndex int // index into the org dataset, -1 if single-AS org
}

// topology is the ground-truth AS graph plus address plan.
type topology struct {
	ases []AS
	// byASN maps ASN to dense index.
	byASN map[bgp.ASN]int
	orgs  *org.Dataset
	// routable is all address space handed to ASes (announced or held);
	// everything outside it (minus bogons) is never-allocated space.
	routable netx.IntervalSet
}

// buildTopology synthesizes the AS graph, organizations and address plan.
func buildTopology(cfg Config, rng *rand.Rand) *topology {
	nT1, nTr, nSt := cfg.NumTier1, cfg.NumTransit, cfg.NumStub
	total := nT1 + nTr + nSt
	t := &topology{
		ases:  make([]AS, total),
		byASN: make(map[bgp.ASN]int, total),
	}
	for i := range t.ases {
		a := &t.ases[i]
		switch {
		case i < nT1:
			a.ASN = bgp.ASN(10 + 10*i) // 10, 20, 30, ...
			a.Tier = Tier1
		case i < nT1+nTr:
			a.ASN = bgp.ASN(1000 + (i - nT1))
			a.Tier = Transit
		default:
			a.ASN = bgp.ASN(10000 + (i - nT1 - nTr))
			a.Tier = Stub
		}
		a.OrgIndex = -1
		t.byASN[a.ASN] = i
	}

	link := func(provider, customer int) {
		t.ases[provider].Customers = append(t.ases[provider].Customers, customer)
		t.ases[customer].Providers = append(t.ases[customer].Providers, provider)
	}
	peer := func(a, b int) {
		t.ases[a].Peers = append(t.ases[a].Peers, b)
		t.ases[b].Peers = append(t.ases[b].Peers, a)
	}

	// Tier-1 clique.
	for i := 0; i < nT1; i++ {
		for j := i + 1; j < nT1; j++ {
			peer(i, j)
		}
	}

	// Transit tier: providers from tier-1 (1-2), occasionally another
	// transit; lateral peering among transits.
	for i := nT1; i < nT1+nTr; i++ {
		link(rng.Intn(nT1), i)
		if rng.Float64() < 0.45 {
			p := rng.Intn(nT1)
			if !contains(t.ases[i].Providers, p) {
				link(p, i)
			}
		}
		// A quarter of transits also buy from an earlier transit,
		// deepening the hierarchy.
		if i > nT1 && rng.Float64() < 0.25 {
			p := nT1 + rng.Intn(i-nT1)
			if p != i && !contains(t.ases[i].Providers, p) {
				link(p, i)
			}
		}
	}
	for i := nT1; i < nT1+nTr; i++ {
		// Peer with ~8% of other transits.
		for j := i + 1; j < nT1+nTr; j++ {
			if rng.Float64() < 0.08 {
				peer(i, j)
			}
		}
	}

	// Stubs: 1-2 transit providers (20% multihomed), a few directly under
	// tier-1 so tier-1 degrees stay dominant.
	for i := nT1 + nTr; i < total; i++ {
		var p int
		if rng.Float64() < 0.06 {
			p = rng.Intn(nT1)
		} else {
			p = nT1 + rng.Intn(nTr)
		}
		link(p, i)
		if rng.Float64() < 0.45 { // multihomed
			q := nT1 + rng.Intn(nTr)
			if q != p && !contains(t.ases[i].Providers, q) {
				link(q, i)
			}
		}
	}

	t.buildOrgs(cfg, rng)
	t.allocateAddresses(cfg, rng)
	t.pickSelectiveAnnouncers(cfg, rng)
	return t
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// buildOrgs creates the AS-to-organization dataset. A fraction of transit
// ASes own 1-3 sibling ASes (drawn from stubs); the sibling links are NOT
// added to the BGP-visible topology — they are hidden internal links, which
// is exactly what makes the multi-AS-org correction matter.
func (t *topology) buildOrgs(cfg Config, rng *rand.Rand) {
	var orgs []org.Org
	nT1 := 0
	for _, a := range t.ases {
		if a.Tier == Tier1 {
			nT1++
		}
	}
	assigned := make(map[int]bool)
	addOrg := func(name string, members []int) {
		idx := len(orgs)
		var asns []bgp.ASN
		for _, m := range members {
			asns = append(asns, t.ases[m].ASN)
			t.ases[m].OrgIndex = idx
			assigned[m] = true
		}
		orgs = append(orgs, org.Org{
			ID:   orgID(idx),
			Name: name,
			ASNs: asns,
		})
	}

	// Multi-AS orgs around a subset of transits.
	var stubsFree []int
	for i, a := range t.ases {
		if a.Tier == Stub {
			stubsFree = append(stubsFree, i)
		}
	}
	rng.Shuffle(len(stubsFree), func(i, j int) {
		stubsFree[i], stubsFree[j] = stubsFree[j], stubsFree[i]
	})
	next := 0
	for i, a := range t.ases {
		if a.Tier != Transit || rng.Float64() >= cfg.MultiASOrgFraction {
			continue
		}
		n := 1 + rng.Intn(3)
		members := []int{i}
		for k := 0; k < n && next < len(stubsFree); k++ {
			members = append(members, stubsFree[next])
			next++
		}
		if len(members) < 2 {
			continue
		}
		addOrg("MultiNet-"+t.ases[i].ASN.String(), members)
		// Record sibling links. Most are visible in BGP as ordinary
		// peerings (so the Full Cone covers them without org merging,
		// while the Customer Cone — which excludes peering — needs the
		// org correction: the §4.3 asymmetry). A minority stay hidden
		// internal links invisible to every approach.
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				mx, my := members[x], members[y]
				t.ases[mx].Siblings = append(t.ases[mx].Siblings, my)
				t.ases[my].Siblings = append(t.ases[my].Siblings, mx)
				if rng.Float64() < 0.7 {
					t.ases[mx].VisibleSiblings = append(t.ases[mx].VisibleSiblings, my)
					t.ases[my].VisibleSiblings = append(t.ases[my].VisibleSiblings, mx)
				}
			}
		}
	}
	// Single-AS orgs for everyone else.
	for i := range t.ases {
		if !assigned[i] {
			addOrg("Org-"+t.ases[i].ASN.String(), []int{i})
		}
	}
	t.orgs = org.NewDataset(orgs)
}

func orgID(i int) string { return "ORG-" + string(rune('A'+i%26)) + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// allocateAddresses carves the routable IPv4 space into per-AS blocks.
// Tier-1s get /8, transits /11-/13, stubs /16-/20 (a scaled-down Internet:
// with ~1/40 of the real AS count, per-AS blocks are enlarged so that the
// routed share of the address space stays the dominant category, as in
// Figure 1a). Bogon-overlapping space is skipped; gaps stay unallocated
// (never-routed). A fraction of ASes additionally hold unannounced space,
// and some stubs get a provider-assigned (PA) sub-prefix of their
// provider's block.
func (t *topology) allocateAddresses(cfg Config, rng *rand.Rand) {
	bogons := bogon.NewReferenceSet()
	cursor := uint32(netx.AddrFrom4(1, 0, 0, 0))
	var routable []netx.Interval

	alloc := func(bits uint8) (netx.Prefix, bool) {
		size := uint32(1) << (32 - bits)
		for {
			// Align the cursor.
			if cursor%size != 0 {
				cursor = (cursor/size + 1) * size
			}
			if cursor >= uint32(netx.AddrFrom4(224, 0, 0, 0)) {
				return netx.Prefix{}, false // out of unicast space
			}
			p := netx.PrefixFrom(netx.Addr(cursor), bits)
			cursor += size
			if bogons.Contains(p.First()) || bogons.Contains(p.Last()) {
				continue // skip bogon-overlapping blocks
			}
			return p, true
		}
	}
	skipGap := func(frac float64, bits uint8) {
		// Leave a hole of the given size with probability frac: this space
		// is routable but never allocated, enlarging the Unrouted pool.
		if rng.Float64() < frac {
			size := uint32(1) << (32 - bits)
			cursor += size
		}
	}

	for i := range t.ases {
		a := &t.ases[i]
		var bits uint8
		var extra int
		switch a.Tier {
		case Tier1:
			bits, extra = 8, 1
		case Transit:
			bits, extra = uint8(11+rng.Intn(3)), rng.Intn(2)
		default:
			bits = uint8(16 + rng.Intn(5))
			if rng.Float64() < 0.5 {
				extra = 1 // many edge networks announce a second block
			}
		}
		p, ok := alloc(bits)
		if !ok {
			break
		}
		a.Announced = append(a.Announced, p)
		routable = append(routable, netx.IntervalOf(p))
		// Secondary blocks stay within the global /8../24 announcement
		// sanity window (§3.3) or they would count as unrouted.
		extraBits := bits + 2
		if extraBits > 24 {
			extraBits = 24
		}
		for e := 0; e < extra; e++ {
			q, ok := alloc(extraBits)
			if !ok {
				break
			}
			a.Announced = append(a.Announced, q)
			routable = append(routable, netx.IntervalOf(q))
		}
		// Held (allocated, never announced) space.
		heldBits := bits + 1
		if heldBits > 24 {
			heldBits = 24
		}
		if rng.Float64() < cfg.HeldSpaceFraction {
			h, ok := alloc(heldBits)
			if ok {
				a.Held = append(a.Held, h)
				routable = append(routable, netx.IntervalOf(h))
			}
		}
		skipGap(0.3, bits+2)
	}

	// PA sub-allocations: ~4% of stubs announce a more-specific slice of
	// their first provider's block instead of only their own space.
	for i := range t.ases {
		a := &t.ases[i]
		if a.Tier != Stub || len(a.Providers) == 0 || rng.Float64() >= 0.04 {
			continue
		}
		prov := &t.ases[a.Providers[0]]
		if len(prov.Announced) == 0 {
			continue
		}
		block := prov.Announced[0]
		if block.Bits > 22 {
			continue
		}
		// Take a deterministic /24 slice of the provider block.
		offset := uint32(rng.Intn(int(block.NumAddrs() / 256)))
		sub := netx.PrefixFrom(block.First()+netx.Addr(offset*256), 24)
		a.Announced = append(a.Announced, sub)
	}

	t.routable = netx.NewIntervalSet(routable...)
}

// pickSelectiveAnnouncers marks multihomed ASes that announce a prefix to
// only one provider (yet route traffic via all of them).
func (t *topology) pickSelectiveAnnouncers(cfg Config, rng *rand.Rand) {
	for i := range t.ases {
		a := &t.ases[i]
		// Only multihomed ASes with at least one other, fully-exported
		// prefix: the selective prefix is a TE overlay, not the AS's only
		// visibility (a single-prefix AS going selective would vanish from
		// entire branches of the topology).
		if len(a.Providers) < 2 || len(a.Announced) < 2 {
			continue
		}
		if rng.Float64() >= cfg.SelectiveAnnounceFraction {
			continue
		}
		p := a.Announced[len(a.Announced)-1]
		only := a.Providers[rng.Intn(len(a.Providers))]
		if a.SelectiveExport == nil {
			a.SelectiveExport = make(map[netx.Prefix][]int)
		}
		a.SelectiveExport[p] = []int{only}
	}
}

// Index returns the dense index of an ASN, or -1.
func (t *topology) Index(asn bgp.ASN) int {
	if i, ok := t.byASN[asn]; ok {
		return i
	}
	return -1
}

// sortedNeighbours returns a deterministic neighbour ordering for routing.
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
