// Package spoofer simulates the CAIDA Spoofer project's crowd-sourced
// active measurements (§4.5): probes inside ASes craft packets with
// spoofed source addresses and send them toward a measurement server; a
// probe "succeeds" when no AS along the forwarding path filters it. The
// results are the active-measurement side of the paper's cross-check
// against passive detection.
package spoofer

import (
	"math/rand"
	"sort"

	"spoofscope/internal/bgp"
	"spoofscope/internal/scenario"
)

// Result is the outcome of probing one AS.
type Result struct {
	ASN bgp.ASN
	// Sessions is how many probe sessions ran during the year-long window.
	Sessions int
	// CouldSpoof is true when at least one spoofed probe reached the
	// measurement server.
	CouldSpoof bool
	// BlockedAt, for filtered probes, names the first AS that dropped the
	// packet (the probe's own AS when egress filtering works).
	BlockedAt bgp.ASN
}

// Dataset is a spoofer measurement campaign.
type Dataset struct {
	Results []Result
	byASN   map[bgp.ASN]*Result
}

// Lookup returns the result for an AS.
func (d *Dataset) Lookup(asn bgp.ASN) (Result, bool) {
	r, ok := d.byASN[asn]
	if !ok {
		return Result{}, false
	}
	return *r, true
}

// Simulate runs probes from a sample of ASes: memberFraction of the IXP
// members (the paper found direct measurements for 8% of members) plus
// extra non-member stubs. A probe escapes its own AS when the AS's
// ground-truth egress filtering lets spoofed traffic out, and then must
// survive transit filtering along the ground-truth forwarding path to the
// measurement server.
func Simulate(s *scenario.Scenario, memberFraction float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{byASN: make(map[bgp.ASN]*Result)}

	probe := func(asIdx int, emitsSpoofable bool) {
		asn := s.ASInfo(asIdx).ASN
		if _, dup := d.byASN[asn]; dup {
			return
		}
		res := Result{ASN: asn, Sessions: 1 + rng.Intn(5)}
		switch {
		case !emitsSpoofable:
			// The AS's own egress filtering drops the probe.
			res.BlockedAt = asn
		default:
			path := s.TrafficPath(asIdx, s.MeasurementServer)
			if path == nil {
				res.BlockedAt = asn // no route: treat as not spoofable
				break
			}
			res.CouldSpoof = true
			for _, hop := range path[1:] {
				if s.TransitFilters[hop] {
					res.CouldSpoof = false
					res.BlockedAt = s.ASInfo(hop).ASN
					break
				}
			}
		}
		d.Results = append(d.Results, res)
		d.byASN[asn] = &d.Results[len(d.Results)-1]
	}

	// Member probes.
	order := rng.Perm(len(s.Members))
	n := int(float64(len(s.Members)) * memberFraction)
	for _, i := range order[:n] {
		m := &s.Members[i]
		// Ground truth spoofability: the member's network lets spoofed
		// traffic out iff it emits unrouted or invalid traffic.
		probe(m.ASIndex, m.EmitsUnrouted || m.EmitsInvalid)
	}

	// Non-member stub probes (the broader crowd-sourced population).
	var stubs []int
	memberSet := make(map[int]bool)
	for _, m := range s.Members {
		memberSet[m.ASIndex] = true
	}
	for i := 0; i < s.NumASes(); i++ {
		if s.ASInfo(i).Tier == scenario.Stub && !memberSet[i] {
			stubs = append(stubs, i)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i < len(stubs)/4; i++ {
		// Non-members: ~45% of stub networks lack egress filtering.
		probe(stubs[i], rng.Float64() < 0.45)
	}

	sort.Slice(d.Results, func(i, j int) bool { return d.Results[i].ASN < d.Results[j].ASN })
	// Rebuild pointers after sorting.
	for i := range d.Results {
		d.byASN[d.Results[i].ASN] = &d.Results[i]
	}
	return d
}

// CrossCheck compares the active dataset with a passive per-AS spoofing
// verdict (ASN -> passive detected spoofed traffic). It mirrors §4.5's
// metrics over the overlap population.
type CrossCheck struct {
	Overlap             int // ASes with both active and passive data
	PassiveDetected     int // passive saw spoofed traffic
	ActiveSpoofable     int // active says spoofing possible
	AgreeOnPassive      int // of passive detections, active agrees
	ActiveAlsoDetected  int // of active spoofable, passive also detected
	PassiveOnlyDetected int
	ActiveOnlyDetected  int
}

// CrossCheckPassive computes the §4.5 comparison for the ASes present in
// both datasets.
func (d *Dataset) CrossCheckPassive(passive map[bgp.ASN]bool) CrossCheck {
	var c CrossCheck
	for asn, detected := range passive {
		r, ok := d.byASN[asn]
		if !ok {
			continue
		}
		c.Overlap++
		if detected {
			c.PassiveDetected++
		}
		if r.CouldSpoof {
			c.ActiveSpoofable++
		}
		switch {
		case detected && r.CouldSpoof:
			c.AgreeOnPassive++
			c.ActiveAlsoDetected++
		case detected && !r.CouldSpoof:
			c.PassiveOnlyDetected++
		case !detected && r.CouldSpoof:
			c.ActiveOnlyDetected++
		}
	}
	return c
}
