package spoofer

import (
	"testing"

	"spoofscope/internal/bgp"
	"spoofscope/internal/scenario"
)

func dataset(t *testing.T) (*scenario.Scenario, *Dataset) {
	t.Helper()
	s, err := scenario.Build(scenario.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, Simulate(s, 0.3, 11)
}

func TestSimulateBasics(t *testing.T) {
	s, d := dataset(t)
	if len(d.Results) == 0 {
		t.Fatal("no results")
	}
	memberProbes, spoofable := 0, 0
	for _, r := range d.Results {
		if r.Sessions < 1 {
			t.Fatalf("result without sessions: %+v", r)
		}
		if got, ok := d.Lookup(r.ASN); !ok || got.ASN != r.ASN {
			t.Fatal("Lookup broken")
		}
		if s.MemberByASN(r.ASN) != nil {
			memberProbes++
		}
		if r.CouldSpoof {
			spoofable++
			if r.BlockedAt != 0 {
				t.Fatalf("spoofable result names a blocker: %+v", r)
			}
		}
	}
	wantMembers := int(0.3 * float64(len(s.Members)))
	if memberProbes < wantMembers-2 || memberProbes > wantMembers+2 {
		t.Errorf("member probes = %d, want ~%d", memberProbes, wantMembers)
	}
	// Some but not all probes succeed (the paper: ~30% spoofable).
	if spoofable == 0 || spoofable == len(d.Results) {
		t.Errorf("spoofable = %d of %d", spoofable, len(d.Results))
	}
}

func TestFilteringMembersNeverSpoofable(t *testing.T) {
	s, d := dataset(t)
	for _, m := range s.Members {
		r, ok := d.Lookup(m.ASN)
		if !ok {
			continue
		}
		if !m.EmitsUnrouted && !m.EmitsInvalid && r.CouldSpoof {
			t.Fatalf("filtering member %s reported spoofable", m.ASN)
		}
		if !m.EmitsUnrouted && !m.EmitsInvalid && r.BlockedAt != m.ASN {
			t.Fatalf("filtering member %s blocked at %s, want self", m.ASN, r.BlockedAt)
		}
	}
}

func TestTransitFilteringBlocksSomeProbes(t *testing.T) {
	s, d := dataset(t)
	blockedMidPath := 0
	for _, r := range d.Results {
		if !r.CouldSpoof && r.BlockedAt != 0 && r.BlockedAt != r.ASN {
			blockedMidPath++
		}
	}
	if len(s.TransitFilters) > 0 && blockedMidPath == 0 {
		t.Error("no probe was blocked by transit filtering")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	s, err := scenario.Build(scenario.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := Simulate(s, 0.25, 5)
	b := Simulate(s, 0.25, 5)
	if len(a.Results) != len(b.Results) {
		t.Fatal("result counts differ")
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestCrossCheck(t *testing.T) {
	_, d := dataset(t)
	passive := make(map[bgp.ASN]bool)
	// Passive agrees with active for spoofable ASes, plus detects one
	// extra, plus covers one AS active has no data for.
	var firstSpoofable, firstFiltered bgp.ASN
	for _, r := range d.Results {
		if r.CouldSpoof && firstSpoofable == 0 {
			firstSpoofable = r.ASN
		}
		if !r.CouldSpoof && firstFiltered == 0 {
			firstFiltered = r.ASN
		}
	}
	if firstSpoofable == 0 || firstFiltered == 0 {
		t.Skip("degenerate dataset")
	}
	passive[firstSpoofable] = true
	passive[firstFiltered] = true // passive-only detection
	passive[9999999] = true       // no active data: ignored

	c := d.CrossCheckPassive(passive)
	if c.Overlap != 2 {
		t.Fatalf("overlap = %d", c.Overlap)
	}
	if c.PassiveDetected != 2 || c.AgreeOnPassive != 1 || c.PassiveOnlyDetected != 1 {
		t.Fatalf("cross-check = %+v", c)
	}
}
