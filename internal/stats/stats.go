// Package stats provides the small statistical toolkit the experiment
// drivers share: weighted empirical distributions (CDF/CCDF/quantiles),
// three-set Venn accounting, and plain-text table and series rendering for
// terminal reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Distribution is a weighted empirical distribution.
type Distribution struct {
	xs     []float64
	ws     []float64
	sumW   float64
	sorted bool
}

// Add inserts a sample with weight w (w <= 0 is ignored).
func (d *Distribution) Add(x, w float64) {
	if w <= 0 {
		return
	}
	d.xs = append(d.xs, x)
	d.ws = append(d.ws, w)
	d.sumW += w
	d.sorted = false
}

// AddN inserts a sample with weight 1.
func (d *Distribution) AddN(x float64) { d.Add(x, 1) }

// Len returns the number of samples.
func (d *Distribution) Len() int { return len(d.xs) }

// TotalWeight returns the sum of weights.
func (d *Distribution) TotalWeight() float64 { return d.sumW }

func (d *Distribution) sort() {
	if d.sorted {
		return
	}
	idx := make([]int, len(d.xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d.xs[idx[a]] < d.xs[idx[b]] })
	xs := make([]float64, len(d.xs))
	ws := make([]float64, len(d.ws))
	for i, j := range idx {
		xs[i], ws[i] = d.xs[j], d.ws[j]
	}
	d.xs, d.ws = xs, ws
	d.sorted = true
}

// CDF returns P(X <= x).
func (d *Distribution) CDF(x float64) float64 {
	if d.sumW == 0 {
		return 0
	}
	d.sort()
	i := sort.SearchFloat64s(d.xs, math.Nextafter(x, math.Inf(1)))
	var w float64
	for j := 0; j < i; j++ {
		w += d.ws[j]
	}
	// Clamp: summation order differs from sumW's accumulation order, so
	// the ratio can exceed 1 by an ulp.
	if w > d.sumW {
		w = d.sumW
	}
	return w / d.sumW
}

// CCDF returns P(X > x).
func (d *Distribution) CCDF(x float64) float64 { return 1 - d.CDF(x) }

// Quantile returns the smallest x with CDF(x) >= q, for q in (0, 1].
func (d *Distribution) Quantile(q float64) float64 {
	if d.sumW == 0 || len(d.xs) == 0 {
		return math.NaN()
	}
	d.sort()
	target := q * d.sumW
	var acc float64
	for i, w := range d.ws {
		acc += w
		if acc >= target {
			return d.xs[i]
		}
	}
	return d.xs[len(d.xs)-1]
}

// Mean returns the weighted mean.
func (d *Distribution) Mean() float64 {
	if d.sumW == 0 {
		return math.NaN()
	}
	var s float64
	for i, x := range d.xs {
		s += x * d.ws[i]
	}
	return s / d.sumW
}

// Max returns the largest sample.
func (d *Distribution) Max() float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	d.sort()
	return d.xs[len(d.xs)-1]
}

// Venn3 counts membership combinations across three sets (A, B, C).
type Venn3 struct {
	Counts [8]int // index bit0=A, bit1=B, bit2=C
	Total  int
}

// Add records one element's memberships.
func (v *Venn3) Add(a, b, c bool) {
	i := 0
	if a {
		i |= 1
	}
	if b {
		i |= 2
	}
	if c {
		i |= 4
	}
	v.Counts[i]++
	v.Total++
}

// Fraction returns the share of elements with exactly the given membership.
func (v *Venn3) Fraction(a, b, c bool) float64 {
	if v.Total == 0 {
		return 0
	}
	i := 0
	if a {
		i |= 1
	}
	if b {
		i |= 2
	}
	if c {
		i |= 4
	}
	return float64(v.Counts[i]) / float64(v.Total)
}

// InAnyFraction returns the share of elements in at least one set.
func (v *Venn3) InAnyFraction() float64 {
	if v.Total == 0 {
		return 0
	}
	return 1 - float64(v.Counts[0])/float64(v.Total)
}

// Table renders aligned plain-text tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders floats compactly (4 significant-ish digits).
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.001:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render produces the aligned text table.
func (t *Table) Render() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Sparkline renders a series as a compact unicode bar chart.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		if max == 0 {
			b.WriteRune(bars[0])
			continue
		}
		i := int(v / max * float64(len(bars)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(bars) {
			i = len(bars) - 1
		}
		b.WriteRune(bars[i])
	}
	return b.String()
}

// Percent formats a ratio as a percentage string.
func Percent(x float64) string {
	switch {
	case math.IsNaN(x):
		return "-"
	case x != 0 && x < 0.0001:
		return fmt.Sprintf("%.2e%%", x*100)
	default:
		return fmt.Sprintf("%.2f%%", x*100)
	}
}

// Downsample reduces a series to n points by summing within windows
// (useful for rendering long time series).
func Downsample(values []uint64, n int) []float64 {
	if n <= 0 || len(values) == 0 {
		return nil
	}
	if n > len(values) {
		n = len(values)
	}
	out := make([]float64, n)
	for i, v := range values {
		out[i*n/len(values)] += float64(v)
	}
	return out
}

// SpikinessRatio measures how bursty a series is: the ratio of the 99.9th
// percentile to the median of the non-zero values. Regular diurnal traffic
// stays near 1-3; attack-driven series are far higher.
func SpikinessRatio(values []uint64) float64 {
	var d Distribution
	for _, v := range values {
		if v > 0 {
			d.AddN(float64(v))
		}
	}
	if d.Len() == 0 {
		return math.NaN()
	}
	med := d.Quantile(0.5)
	if med == 0 {
		return math.Inf(1)
	}
	return d.Quantile(0.999) / med
}
