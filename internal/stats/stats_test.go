package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDistributionBasics(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.AddN(float64(i))
	}
	if d.Len() != 100 || d.TotalWeight() != 100 {
		t.Fatalf("len=%d w=%v", d.Len(), d.TotalWeight())
	}
	if got := d.CDF(50); math.Abs(got-0.5) > 0.01 {
		t.Errorf("CDF(50) = %v", got)
	}
	if got := d.CCDF(50); math.Abs(got-0.5) > 0.01 {
		t.Errorf("CCDF(50) = %v", got)
	}
	if got := d.Quantile(0.25); got != 25 {
		t.Errorf("Q(0.25) = %v", got)
	}
	if got := d.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if got := d.Max(); got != 100 {
		t.Errorf("Max = %v", got)
	}
}

func TestDistributionWeighted(t *testing.T) {
	var d Distribution
	d.Add(1, 9)
	d.Add(10, 1)
	if got := d.CDF(1); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("CDF(1) = %v", got)
	}
	if got := d.Quantile(0.5); got != 1 {
		t.Errorf("median = %v", got)
	}
	// Non-positive weights ignored.
	d.Add(100, 0)
	d.Add(100, -3)
	if d.Len() != 2 {
		t.Fatalf("bad weights accepted: %d", d.Len())
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.CDF(5) != 0 || d.CCDF(5) != 1 {
		t.Error("empty CDF/CCDF wrong")
	}
	if !math.IsNaN(d.Quantile(0.5)) || !math.IsNaN(d.Mean()) || !math.IsNaN(d.Max()) {
		t.Error("empty distribution must return NaN")
	}
}

func TestDistributionCDFMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d Distribution
		for i := 0; i < 50; i++ {
			d.Add(rng.Float64()*100, rng.Float64()*5)
		}
		prev := -1.0
		for x := -10.0; x <= 110; x += 5 {
			c := d.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVenn3(t *testing.T) {
	var v Venn3
	v.Add(true, false, false)
	v.Add(true, true, true)
	v.Add(false, false, false)
	v.Add(false, false, false)
	if v.Total != 4 {
		t.Fatalf("Total = %d", v.Total)
	}
	if got := v.Fraction(true, false, false); got != 0.25 {
		t.Errorf("Fraction(A only) = %v", got)
	}
	if got := v.Fraction(true, true, true); got != 0.25 {
		t.Errorf("Fraction(ABC) = %v", got)
	}
	if got := v.InAnyFraction(); got != 0.5 {
		t.Errorf("InAny = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", 42)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "3.142") {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		3.14159: "3.142",
		1e7:     "1e+07",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.NaN()); got != "-" {
		t.Errorf("NaN = %q", got)
	}
	if got := FormatFloat(0.00001); !strings.Contains(got, "e") {
		t.Errorf("tiny float = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	s := Sparkline([]float64{0, 1, 2, 4, 8})
	if len([]rune(s)) != 5 {
		t.Fatalf("sparkline length: %q", s)
	}
	rs := []rune(s)
	if rs[0] >= rs[4] {
		t.Fatalf("sparkline not increasing: %q", s)
	}
	flat := Sparkline([]float64{0, 0})
	if []rune(flat)[0] != '▁' {
		t.Fatalf("flat zero series: %q", flat)
	}
}

func TestDownsample(t *testing.T) {
	in := []uint64{1, 2, 3, 4, 5, 6}
	out := Downsample(in, 3)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("mass not preserved: %v", out)
	}
	if Downsample(nil, 3) != nil {
		t.Error("nil input")
	}
	if got := Downsample(in, 100); len(got) != len(in) {
		t.Errorf("oversample len = %d", len(got))
	}
}

func TestSpikinessRatio(t *testing.T) {
	flat := make([]uint64, 100)
	for i := range flat {
		flat[i] = 100
	}
	if r := SpikinessRatio(flat); r != 1 {
		t.Errorf("flat spikiness = %v", r)
	}
	spiky := make([]uint64, 100)
	for i := range spiky {
		spiky[i] = 1
	}
	spiky[50] = 100000
	if r := SpikinessRatio(spiky); r < 100 {
		t.Errorf("spiky spikiness = %v", r)
	}
	if !math.IsNaN(SpikinessRatio(nil)) {
		t.Error("empty spikiness")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.1234); got != "12.34%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(0.0000001); !strings.Contains(got, "e") {
		t.Errorf("tiny percent = %q", got)
	}
}
