// Package survey models the network-operator questionnaire of §2.2: 84
// responses across operator mailing lists about spoofing impact and
// filtering practices. The synthetic respondents are drawn from the
// scenario's member networks (plus outside networks), and their answers
// derive from their ground-truth filtering policies with self-reporting
// noise — respondents who deploy some filtering are over-represented, the
// bias the paper itself flags ("our sample is unavoidably biased by
// operators who already took some measures").
package survey

import (
	"fmt"
	"math/rand"
	"strings"

	"spoofscope/internal/bgp"
	"spoofscope/internal/scenario"
	"spoofscope/internal/stats"
)

// IngressPolicy is a §2.2 ingress-filtering answer.
type IngressPolicy int

// Ingress filtering answers.
const (
	IngressNone IngressPolicy = iota
	IngressStaticBogons
	IngressCustomerSpecific
)

// EgressPolicy is a §2.2 egress-filtering answer.
type EgressPolicy int

// Egress filtering answers.
const (
	EgressNone EgressPolicy = iota
	EgressStaticBogons
	EgressCustomerSpecific
)

// Response is one operator's questionnaire.
type Response struct {
	ASN  bgp.ASN
	Type scenario.BusinessType

	SufferedSpoofingAttack bool
	SendsComplaints        bool
	ChecksSourceValidity   bool

	Ingress IngressPolicy
	Egress  EgressPolicy
	// FiltersOwnOrigin: does the network filter traffic originated inside
	// its own network before the egress router?
	FiltersOwnOrigin bool

	// Free-text-ish obstacles, from the paper's catalogue.
	Obstacles []string
}

// obstacleCatalogue is the set of §2.2 reasons for not filtering.
var obstacleCatalogue = []string{
	"risk of dropping paying customers' legitimate traffic",
	"maintaining peer-specific filter lists is out of reach",
	"strict RPF breaks under asymmetric routing / multihoming",
	"equipment lacks proper RPF support",
	"no direct economic benefit from running a clean network",
	"spoofed traffic is a negligible share of transported volume",
}

// Dataset is a survey campaign.
type Dataset struct {
	Responses []Response
}

// Conduct simulates circulating the questionnaire: ~targetResponses
// members answer, with response probability skewed toward networks that
// already filter (the paper's acknowledged bias).
func Conduct(s *scenario.Scenario, targetResponses int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	order := rng.Perm(len(s.Members))
	for _, i := range order {
		if len(d.Responses) >= targetResponses {
			break
		}
		m := &s.Members[i]
		filters := !m.EmitsUnrouted && !m.EmitsInvalid
		// Response bias: filtering operators answer at ~2x the rate.
		pAnswer := 0.35
		if filters {
			pAnswer = 0.7
		}
		if rng.Float64() > pAnswer {
			continue
		}
		r := Response{ASN: m.ASN, Type: m.Type}

		// Impact: most respondents have suffered spoofing-enabled attacks.
		r.SufferedSpoofingAttack = rng.Float64() < 0.72
		r.SendsComplaints = r.SufferedSpoofingAttack && rng.Float64() < 0.7
		r.ChecksSourceValidity = filters || rng.Float64() < 0.35

		// Ingress: static bogon filtering is widespread; customer-specific
		// filters are rare.
		switch v := rng.Float64(); {
		case v < 0.07:
			r.Ingress = IngressNone
		case v < 0.78:
			r.Ingress = IngressStaticBogons
		default:
			r.Ingress = IngressCustomerSpecific
		}
		// Egress derives from ground truth: a member that leaks nothing
		// has working egress filtering.
		switch {
		case filters && !m.EmitsBogon:
			r.Egress = EgressCustomerSpecific
		case filters:
			r.Egress = EgressCustomerSpecific
		case !m.EmitsBogon:
			r.Egress = EgressStaticBogons
		default:
			r.Egress = EgressNone
		}
		r.FiltersOwnOrigin = filters && rng.Float64() < 0.9

		// Non-filtering operators cite obstacles.
		if !filters {
			n := 1 + rng.Intn(3)
			perm := rng.Perm(len(obstacleCatalogue))
			for k := 0; k < n; k++ {
				r.Obstacles = append(r.Obstacles, obstacleCatalogue[perm[k]])
			}
		}
		d.Responses = append(d.Responses, r)
	}
	return d
}

// Summary aggregates the §2.2 statistics.
type Summary struct {
	Responses               int
	SufferedFrac            float64
	ComplainsFrac           float64
	NoValidityCheckFrac     float64
	IngressNoneFrac         float64
	IngressStaticFrac       float64
	IngressCustomerFrac     float64
	EgressNoneFrac          float64
	EgressStaticFrac        float64
	EgressCustomerFrac      float64
	FiltersOwnOriginFrac    float64
	TopObstacle             string
	TopObstacleRespondents  int
	DistinctBusinessTypes   int
	respondentsPerObstacles map[string]int
}

// Summarize computes the headline fractions.
func (d *Dataset) Summarize() *Summary {
	s := &Summary{
		Responses:               len(d.Responses),
		respondentsPerObstacles: make(map[string]int),
	}
	if s.Responses == 0 {
		return s
	}
	types := map[scenario.BusinessType]bool{}
	n := float64(s.Responses)
	for _, r := range d.Responses {
		types[r.Type] = true
		if r.SufferedSpoofingAttack {
			s.SufferedFrac += 1 / n
		}
		if r.SendsComplaints {
			s.ComplainsFrac += 1 / n
		}
		if !r.ChecksSourceValidity {
			s.NoValidityCheckFrac += 1 / n
		}
		switch r.Ingress {
		case IngressNone:
			s.IngressNoneFrac += 1 / n
		case IngressStaticBogons:
			s.IngressStaticFrac += 1 / n
		default:
			s.IngressCustomerFrac += 1 / n
		}
		switch r.Egress {
		case EgressNone:
			s.EgressNoneFrac += 1 / n
		case EgressStaticBogons:
			s.EgressStaticFrac += 1 / n
		default:
			s.EgressCustomerFrac += 1 / n
		}
		if r.FiltersOwnOrigin {
			s.FiltersOwnOriginFrac += 1 / n
		}
		for _, o := range r.Obstacles {
			s.respondentsPerObstacles[o]++
		}
	}
	s.DistinctBusinessTypes = len(types)
	for o, c := range s.respondentsPerObstacles {
		if c > s.TopObstacleRespondents ||
			(c == s.TopObstacleRespondents && o < s.TopObstacle) {
			s.TopObstacle = o
			s.TopObstacleRespondents = c
		}
	}
	return s
}

// Render prints the §2.2-style report.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2.2 — operator survey (%d responses, %d business types)\n",
		s.Responses, s.DistinctBusinessTypes)
	t := &stats.Table{Header: []string{"question", "share", "paper"}}
	t.AddRow("suffered spoofing-enabled attacks", stats.Percent(s.SufferedFrac), ">70%")
	t.AddRow("send complaints to peers", stats.Percent(s.ComplainsFrac), "50%")
	t.AddRow("do not check source validity", stats.Percent(s.NoValidityCheckFrac), "24%")
	t.AddRow("ingress: none", stats.Percent(s.IngressNoneFrac), "7%")
	t.AddRow("ingress: static bogons", stats.Percent(s.IngressStaticFrac), "~70%")
	t.AddRow("ingress: customer-specific", stats.Percent(s.IngressCustomerFrac), "20%")
	t.AddRow("egress: none", stats.Percent(s.EgressNoneFrac), "24%")
	t.AddRow("egress: static bogons only", stats.Percent(s.EgressStaticFrac), "~26%")
	t.AddRow("egress: customer-specific", stats.Percent(s.EgressCustomerFrac), "~50%")
	t.AddRow("filter own-origin traffic", stats.Percent(s.FiltersOwnOriginFrac), "65%")
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "most-cited obstacle: %q (%d respondents)\n",
		s.TopObstacle, s.TopObstacleRespondents)
	return b.String()
}
