package survey

import (
	"strings"
	"testing"

	"spoofscope/internal/scenario"
)

func dataset(t *testing.T) (*scenario.Scenario, *Dataset) {
	t.Helper()
	s, err := scenario.Build(scenario.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, Conduct(s, 30, 4)
}

func TestConductBasics(t *testing.T) {
	s, d := dataset(t)
	if len(d.Responses) == 0 || len(d.Responses) > 30 {
		t.Fatalf("responses = %d", len(d.Responses))
	}
	seen := map[uint32]bool{}
	for _, r := range d.Responses {
		m := s.MemberByASN(r.ASN)
		if m == nil {
			t.Fatalf("respondent %v is not a member", r.ASN)
		}
		if seen[uint32(r.ASN)] {
			t.Fatalf("duplicate respondent %v", r.ASN)
		}
		seen[uint32(r.ASN)] = true
		// Ground-truth consistency: a member with no leaks reports
		// customer-specific egress filtering.
		filters := !m.EmitsUnrouted && !m.EmitsInvalid
		if filters && r.Egress != EgressCustomerSpecific {
			t.Errorf("filtering member %v reported egress %v", r.ASN, r.Egress)
		}
		if !filters && len(r.Obstacles) == 0 {
			t.Errorf("non-filtering member %v cited no obstacles", r.ASN)
		}
		if filters && len(r.Obstacles) != 0 {
			t.Errorf("filtering member %v cited obstacles", r.ASN)
		}
	}
}

func TestConductDeterministic(t *testing.T) {
	s, err := scenario.Build(scenario.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := Conduct(s, 25, 9)
	b := Conduct(s, 25, 9)
	if len(a.Responses) != len(b.Responses) {
		t.Fatal("non-deterministic response count")
	}
	for i := range a.Responses {
		if a.Responses[i].ASN != b.Responses[i].ASN ||
			a.Responses[i].Egress != b.Responses[i].Egress {
			t.Fatalf("response %d differs", i)
		}
	}
}

func TestSummaryShape(t *testing.T) {
	_, d := dataset(t)
	s := d.Summarize()
	if s.Responses != len(d.Responses) {
		t.Fatalf("Responses = %d", s.Responses)
	}
	// Paper-shape bounds (generous for a small sample).
	if s.SufferedFrac < 0.4 || s.SufferedFrac > 1.0 {
		t.Errorf("suffered = %v, want ~0.72", s.SufferedFrac)
	}
	if got := s.IngressNoneFrac + s.IngressStaticFrac + s.IngressCustomerFrac; got < 0.999 || got > 1.001 {
		t.Errorf("ingress fractions sum to %v", got)
	}
	if got := s.EgressNoneFrac + s.EgressStaticFrac + s.EgressCustomerFrac; got < 0.999 || got > 1.001 {
		t.Errorf("egress fractions sum to %v", got)
	}
	// Static bogon ingress filtering dominates (paper: ~70%).
	if s.IngressStaticFrac < 0.4 {
		t.Errorf("ingress static = %v", s.IngressStaticFrac)
	}
	if s.TopObstacle == "" || s.TopObstacleRespondents == 0 {
		t.Error("no obstacles aggregated")
	}
	out := s.Render()
	if !strings.Contains(out, "operator survey") || !strings.Contains(out, "obstacle") {
		t.Error("render broken")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := (&Dataset{}).Summarize()
	if s.Responses != 0 {
		t.Fatal("phantom responses")
	}
	if !strings.Contains(s.Render(), "0 responses") {
		t.Error("empty render broken")
	}
}

// TestSurveyBias verifies the acknowledged sampling bias: filtering
// operators are over-represented relative to the member population.
func TestSurveyBias(t *testing.T) {
	s, d := dataset(t)
	filteringMembers, totalMembers := 0, len(s.Members)
	for _, m := range s.Members {
		if !m.EmitsUnrouted && !m.EmitsInvalid {
			filteringMembers++
		}
	}
	filteringRespondents := 0
	for _, r := range d.Responses {
		m := s.MemberByASN(r.ASN)
		if !m.EmitsUnrouted && !m.EmitsInvalid {
			filteringRespondents++
		}
	}
	popFrac := float64(filteringMembers) / float64(totalMembers)
	respFrac := float64(filteringRespondents) / float64(len(d.Responses))
	if respFrac <= popFrac {
		t.Errorf("no response bias: population %.2f vs respondents %.2f", popFrac, respFrac)
	}
}
