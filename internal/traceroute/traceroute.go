// Package traceroute is the CAIDA-Ark-style substrate of §5.2: simulated
// traceroute campaigns across the scenario topology whose hop addresses
// are the router interface IPs that border routers actually use. The
// extracted router-address set lets the classifier tag stray router
// traffic inside the Invalid class (Figure 7).
package traceroute

import (
	"math/rand"

	"spoofscope/internal/bgp"
	"spoofscope/internal/netx"
	"spoofscope/internal/scenario"
)

// Hop is one traceroute hop: the replying router interface.
type Hop struct {
	TTL  int
	Addr netx.Addr
	ASN  bgp.ASN // AS owning the router (not the address block!)
}

// Run is one simulated traceroute.
type Run struct {
	Monitor bgp.ASN
	Dst     netx.Addr
	Hops    []Hop
}

// Campaign holds the results of a measurement campaign.
type Campaign struct {
	Runs []Run
}

// Simulate runs a campaign: from each of nMonitors vantage ASes toward
// the announced space of every member AS plus extra random origins. Hop
// addresses follow the provider-assigned link numbering of
// scenario.LinkRouterAddrs, with lossFraction of hops unresponsive.
func Simulate(s *scenario.Scenario, nMonitors int, lossFraction float64, seed int64) *Campaign {
	rng := rand.New(rand.NewSource(seed))
	c := &Campaign{}

	// Monitors: spread over stubs (Ark probes sit in edge networks).
	var stubs []int
	for i := 0; i < s.NumASes(); i++ {
		if s.ASInfo(i).Tier == scenario.Stub && len(s.ASInfo(i).Announced) > 0 {
			stubs = append(stubs, i)
		}
	}
	if len(stubs) == 0 {
		return c
	}
	var monitors []int
	for len(monitors) < nMonitors {
		monitors = append(monitors, stubs[rng.Intn(len(stubs))])
	}

	// Destinations: every member AS (so their upstream links are covered)
	// plus random origins.
	var dsts []int
	for _, m := range s.Members {
		dsts = append(dsts, m.ASIndex)
	}
	for i := 0; i < len(dsts)/2; i++ {
		dsts = append(dsts, stubs[rng.Intn(len(stubs))])
	}

	for _, dst := range dsts {
		anns := s.ASInfo(dst).Announced
		if len(anns) == 0 {
			continue
		}
		target := anns[0].First() + netx.Addr(rng.Uint64()%anns[0].NumAddrs())
		for _, mon := range monitors {
			path := s.TrafficPath(mon, dst)
			if path == nil {
				continue
			}
			run := Run{Monitor: s.ASInfo(mon).ASN, Dst: target}
			ttl := 0
			for hi := 1; hi < len(path); hi++ {
				prev, cur := path[hi-1], path[hi]
				ttl++
				if rng.Float64() < lossFraction {
					continue // unresponsive hop
				}
				addr, ok := linkAddr(s, cur, prev)
				if !ok {
					continue
				}
				run.Hops = append(run.Hops, Hop{TTL: ttl, Addr: addr, ASN: s.ASInfo(cur).ASN})
			}
			// Final hop: the destination host itself.
			run.Hops = append(run.Hops, Hop{TTL: ttl + 1, Addr: target, ASN: s.ASInfo(dst).ASN})
			c.Runs = append(c.Runs, run)
		}
	}
	return c
}

// linkAddr returns the interface address router 'cur' uses on its link
// toward neighbour 'prev', when prev is one of cur's providers (the
// provider-assigned link numbering of the scenario).
func linkAddr(s *scenario.Scenario, cur, prev int) (netx.Addr, bool) {
	provs := s.ASInfo(cur).Providers
	addrs := s.LinkRouterAddrs(cur)
	for i, p := range provs {
		if p == prev && i < len(addrs) {
			return addrs[i], true
		}
	}
	return 0, false
}

// RouterSet is the deduplicated set of router interface addresses
// extracted from a campaign — the equivalent of the paper's "router IP
// addresses from some 500M traceroutes".
type RouterSet struct {
	addrs map[netx.Addr]bool
}

// ExtractRouters collects every intermediate (non-destination) hop address.
func (c *Campaign) ExtractRouters() *RouterSet {
	rs := &RouterSet{addrs: make(map[netx.Addr]bool)}
	for _, r := range c.Runs {
		for i, h := range r.Hops {
			if i == len(r.Hops)-1 && h.Addr == r.Dst {
				continue // destination host, not a router
			}
			rs.addrs[h.Addr] = true
		}
	}
	return rs
}

// Contains reports whether addr was observed as a router interface.
func (rs *RouterSet) Contains(a netx.Addr) bool { return rs.addrs[a] }

// Len returns the number of distinct router addresses.
func (rs *RouterSet) Len() int { return len(rs.addrs) }

// Addrs returns the addresses (unordered).
func (rs *RouterSet) Addrs() []netx.Addr {
	out := make([]netx.Addr, 0, len(rs.addrs))
	for a := range rs.addrs {
		out = append(out, a)
	}
	return out
}
