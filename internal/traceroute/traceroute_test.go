package traceroute

import (
	"testing"

	"spoofscope/internal/scenario"
)

func campaign(t *testing.T) (*scenario.Scenario, *Campaign) {
	t.Helper()
	s, err := scenario.Build(scenario.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, Simulate(s, 8, 0.05, 3)
}

func TestSimulateProducesRuns(t *testing.T) {
	s, c := campaign(t)
	if len(c.Runs) < len(s.Members) {
		t.Fatalf("only %d runs", len(c.Runs))
	}
	for _, r := range c.Runs {
		if len(r.Hops) == 0 {
			t.Fatal("run without hops")
		}
		// TTLs strictly increasing.
		for i := 1; i < len(r.Hops); i++ {
			if r.Hops[i].TTL <= r.Hops[i-1].TTL {
				t.Fatalf("TTLs not increasing: %+v", r.Hops)
			}
		}
		// Last hop is the destination.
		if r.Hops[len(r.Hops)-1].Addr != r.Dst {
			t.Fatalf("last hop %v != dst %v", r.Hops[len(r.Hops)-1].Addr, r.Dst)
		}
	}
}

func TestExtractRoutersCoversStraySources(t *testing.T) {
	s, c := campaign(t)
	rs := c.ExtractRouters()
	if rs.Len() == 0 {
		t.Fatal("no routers extracted")
	}
	// The stray router addresses flowgen uses for member ASes must be
	// almost fully covered (their provider links are traced).
	covered, total := 0, 0
	for i := range s.Members {
		for _, a := range s.LinkRouterAddrs(s.Members[i].ASIndex) {
			total++
			if rs.Contains(a) {
				covered++
			}
		}
	}
	if total == 0 {
		t.Fatal("members have no router addresses")
	}
	if frac := float64(covered) / float64(total); frac < 0.85 {
		t.Fatalf("router coverage = %.2f, want >= 0.85", frac)
	}
}

func TestExtractRoutersExcludesDestinations(t *testing.T) {
	_, c := campaign(t)
	rs := c.ExtractRouters()
	for _, r := range c.Runs {
		// A destination seen ONLY as a final hop must not be a "router".
		// (It may legitimately appear if another trace crossed it.)
		_ = r
	}
	if rs.Len() == 0 {
		t.Fatal("empty router set")
	}
	// Sanity: Addrs() round trip.
	for _, a := range rs.Addrs() {
		if !rs.Contains(a) {
			t.Fatal("Addrs/Contains disagree")
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	s, err := scenario.Build(scenario.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := Simulate(s, 4, 0.05, 9)
	b := Simulate(s, 4, 0.05, 9)
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts differ")
	}
	if a.ExtractRouters().Len() != b.ExtractRouters().Len() {
		t.Fatal("router sets differ")
	}
}
