package whois

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics: the RPSL parser must survive arbitrary text.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	fragments := []string{
		"aut-num:", "AS", "import: from ", "export: to ", "route:",
		"origin:", "organisation:", "org-name:", "admin-c:", "\n", ":",
		"192.0.2.0/24", "ANY", "accept", "%", "garbage", " ",
	}
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		for k := rng.Intn(30); k > 0; k-- {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			if rng.Intn(3) == 0 {
				b.WriteByte(byte(rng.Intn(128)))
			}
		}
		Parse(strings.NewReader(b.String())) //nolint:errcheck — only panics matter
	}
}
