package whois

import (
	"spoofscope/internal/bgp"
	"spoofscope/internal/scenario"
)

// FromScenario populates a registry with the scenario's ground truth —
// including the relationships that the BGP view misses: hidden peerings
// (tunnels, private interconnects) appear as import/export policy lines,
// and organisation objects carry contact handles.
func FromScenario(s *scenario.Scenario) *Registry {
	r := NewRegistry()

	// Organisation objects.
	for _, o := range s.Orgs().Orgs() {
		r.AddOrganisation(Organisation{
			ID:      o.ID,
			Name:    o.Name,
			Contact: "AC-" + o.ID,
		})
	}

	// Aut-num objects: org reference + visible provider policies.
	for i := 0; i < s.NumASes(); i++ {
		a := s.ASInfo(i)
		an := AutNum{ASN: a.ASN}
		if o, ok := s.Orgs().OrgOf(a.ASN); ok {
			an.OrgID = o.ID
			an.Contact = "AC-" + o.ID
		}
		for _, p := range a.Providers {
			an.Imports = append(an.Imports, s.ASInfo(p).ASN)
			an.Exports = append(an.Exports, s.ASInfo(p).ASN)
		}
		r.AddAutNum(an)
	}

	// Hidden peerings: both sides publish policy lines naming each other,
	// even though the link never shows up on AS paths.
	for _, m := range s.Members {
		if m.HiddenPeerAS < 0 {
			continue
		}
		partner := s.ASInfo(m.HiddenPeerAS).ASN
		addPolicy(r, m.ASN, partner)
		addPolicy(r, partner, m.ASN)
	}

	// Route objects for every announced prefix.
	for i := 0; i < s.NumASes(); i++ {
		a := s.ASInfo(i)
		orgID := ""
		if o, ok := s.Orgs().OrgOf(a.ASN); ok {
			orgID = o.ID
		}
		for _, p := range a.Announced {
			r.AddRoute(Route{Prefix: p, Origin: a.ASN, OrgID: orgID})
		}
	}
	return r
}

func addPolicy(r *Registry, a, b bgp.ASN) {
	an, ok := r.AutNum(a)
	if !ok {
		an = AutNum{ASN: a}
	}
	if !containsASN(an.Imports, b) {
		an.Imports = append(an.Imports, b)
	}
	if !containsASN(an.Exports, b) {
		an.Exports = append(an.Exports, b)
	}
	r.AddAutNum(an)
}
