// Package whois is the Internet-Routing-Registry substrate of §4.4: an
// RPSL-style database of aut-num, route, and organisation objects built
// from ground truth that the BGP view does not fully expose (hidden
// peerings, tunnel interconnects, organisation contacts). The false
// positive hunt queries it to find missing AS relationships behind
// members whose traffic is dominated by Invalid classifications.
package whois

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"spoofscope/internal/bgp"
	"spoofscope/internal/netx"
)

// AutNum is an RPSL aut-num object.
type AutNum struct {
	ASN     bgp.ASN
	OrgID   string
	Contact string // admin-c handle; shared contacts hint at related orgs
	// Imports and Exports are the ASNs named in import/export policy
	// lines ("import: from AS123 accept ANY").
	Imports []bgp.ASN
	Exports []bgp.ASN
}

// Route is an RPSL route object binding a prefix to its origin.
type Route struct {
	Prefix netx.Prefix
	Origin bgp.ASN
	OrgID  string
}

// Organisation is an RPSL organisation object.
type Organisation struct {
	ID      string
	Name    string
	Contact string
}

// Registry is an in-memory IRR.
type Registry struct {
	autnums map[bgp.ASN]*AutNum
	routes  []Route
	orgs    map[string]*Organisation
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		autnums: make(map[bgp.ASN]*AutNum),
		orgs:    make(map[string]*Organisation),
	}
}

// AddAutNum inserts or replaces an aut-num object.
func (r *Registry) AddAutNum(a AutNum) { cp := a; r.autnums[a.ASN] = &cp }

// AddRoute inserts a route object.
func (r *Registry) AddRoute(rt Route) { r.routes = append(r.routes, rt) }

// AddOrganisation inserts an organisation object.
func (r *Registry) AddOrganisation(o Organisation) { cp := o; r.orgs[o.ID] = &cp }

// AutNum looks up an aut-num.
func (r *Registry) AutNum(asn bgp.ASN) (AutNum, bool) {
	a, ok := r.autnums[asn]
	if !ok {
		return AutNum{}, false
	}
	return *a, true
}

// Organisation looks up an organisation.
func (r *Registry) Organisation(id string) (Organisation, bool) {
	o, ok := r.orgs[id]
	if !ok {
		return Organisation{}, false
	}
	return *o, true
}

// RoutesByOrigin returns the route objects of an origin AS.
func (r *Registry) RoutesByOrigin(asn bgp.ASN) []Route {
	var out []Route
	for _, rt := range r.routes {
		if rt.Origin == asn {
			out = append(out, rt)
		}
	}
	return out
}

// Evidence describes why two ASes are believed to be related despite the
// BGP view lacking a link.
type Evidence struct {
	Kind   string // "import-export", "same-org", "shared-contact"
	Detail string
}

// MissingLinkEvidence checks the registry for a relationship between two
// ASes: mutual or one-sided import/export policy naming the other AS, a
// common organisation, or organisations sharing a contact handle.
func (r *Registry) MissingLinkEvidence(a, b bgp.ASN) (Evidence, bool) {
	an, aok := r.autnums[a]
	bn, bok := r.autnums[b]
	if aok && bok {
		if containsASN(an.Imports, b) || containsASN(an.Exports, b) ||
			containsASN(bn.Imports, a) || containsASN(bn.Exports, a) {
			return Evidence{
				Kind:   "import-export",
				Detail: fmt.Sprintf("policy lines name %s and %s", a, b),
			}, true
		}
		if an.OrgID != "" && an.OrgID == bn.OrgID {
			return Evidence{Kind: "same-org", Detail: "shared organisation " + an.OrgID}, true
		}
		ao, aook := r.orgs[an.OrgID]
		bo, book := r.orgs[bn.OrgID]
		if aook && book && ao.Contact != "" && ao.Contact == bo.Contact {
			return Evidence{Kind: "shared-contact", Detail: "shared admin-c " + ao.Contact}, true
		}
	}
	return Evidence{}, false
}

func containsASN(xs []bgp.ASN, v bgp.ASN) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// --- RPSL-style serialization ---

// Save writes the registry in a whois-flat-file style: objects separated
// by blank lines, "attribute: value" lines.
func (r *Registry) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var asns []bgp.ASN
	for asn := range r.autnums {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		a := r.autnums[asn]
		fmt.Fprintf(bw, "aut-num: AS%d\n", uint32(a.ASN))
		if a.OrgID != "" {
			fmt.Fprintf(bw, "org: %s\n", a.OrgID)
		}
		if a.Contact != "" {
			fmt.Fprintf(bw, "admin-c: %s\n", a.Contact)
		}
		for _, im := range a.Imports {
			fmt.Fprintf(bw, "import: from AS%d accept ANY\n", uint32(im))
		}
		for _, ex := range a.Exports {
			fmt.Fprintf(bw, "export: to AS%d announce ANY\n", uint32(ex))
		}
		fmt.Fprintln(bw)
	}
	for _, rt := range r.routes {
		fmt.Fprintf(bw, "route: %s\norigin: AS%d\n", rt.Prefix, uint32(rt.Origin))
		if rt.OrgID != "" {
			fmt.Fprintf(bw, "org: %s\n", rt.OrgID)
		}
		fmt.Fprintln(bw)
	}
	var orgIDs []string
	for id := range r.orgs {
		orgIDs = append(orgIDs, id)
	}
	sort.Strings(orgIDs)
	for _, id := range orgIDs {
		o := r.orgs[id]
		fmt.Fprintf(bw, "organisation: %s\norg-name: %s\n", o.ID, o.Name)
		if o.Contact != "" {
			fmt.Fprintf(bw, "admin-c: %s\n", o.Contact)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Parse reads a registry saved by Save (or hand-written in the same
// RPSL-ish dialect). Unknown attributes are ignored.
func Parse(rd io.Reader) (*Registry, error) {
	r := NewRegistry()
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var cur map[string][]string
	var order []string
	flush := func() error {
		if cur == nil {
			return nil
		}
		defer func() { cur, order = nil, nil }()
		switch order[0] {
		case "aut-num":
			asn, err := parseASN(cur["aut-num"][0])
			if err != nil {
				return err
			}
			a := AutNum{ASN: asn}
			if v := cur["org"]; len(v) > 0 {
				a.OrgID = v[0]
			}
			if v := cur["admin-c"]; len(v) > 0 {
				a.Contact = v[0]
			}
			for _, line := range cur["import"] {
				if peer, ok := parsePolicyASN(line, "from"); ok {
					a.Imports = append(a.Imports, peer)
				}
			}
			for _, line := range cur["export"] {
				if peer, ok := parsePolicyASN(line, "to"); ok {
					a.Exports = append(a.Exports, peer)
				}
			}
			r.AddAutNum(a)
		case "route":
			p, err := netx.ParsePrefix(cur["route"][0])
			if err != nil {
				return err
			}
			rt := Route{Prefix: p}
			if v := cur["origin"]; len(v) > 0 {
				asn, err := parseASN(v[0])
				if err != nil {
					return err
				}
				rt.Origin = asn
			}
			if v := cur["org"]; len(v) > 0 {
				rt.OrgID = v[0]
			}
			r.AddRoute(rt)
		case "organisation":
			o := Organisation{ID: cur["organisation"][0]}
			if v := cur["org-name"]; len(v) > 0 {
				o.Name = v[0]
			}
			if v := cur["admin-c"]; len(v) > 0 {
				o.Contact = v[0]
			}
			r.AddOrganisation(o)
		}
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if cur == nil {
			cur = make(map[string][]string)
		}
		if _, seen := cur[key]; !seen {
			order = append(order, key)
		}
		cur[key] = append(cur[key], val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return r, nil
}

func parseASN(s string) (bgp.ASN, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "AS")
	var v uint32
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, fmt.Errorf("whois: bad ASN %q", s)
	}
	return bgp.ASN(v), nil
}

// parsePolicyASN extracts the peer ASN from "from AS123 accept ANY" /
// "to AS123 announce ANY".
func parsePolicyASN(line, keyword string) (bgp.ASN, bool) {
	fields := strings.Fields(line)
	for i := 0; i+1 < len(fields); i++ {
		if fields[i] == keyword && strings.HasPrefix(fields[i+1], "AS") {
			asn, err := parseASN(fields[i+1])
			if err == nil {
				return asn, true
			}
		}
	}
	return 0, false
}
