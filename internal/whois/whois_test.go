package whois

import (
	"bytes"
	"strings"
	"testing"

	"spoofscope/internal/bgp"
	"spoofscope/internal/netx"
	"spoofscope/internal/scenario"
)

func sample() *Registry {
	r := NewRegistry()
	r.AddOrganisation(Organisation{ID: "ORG-X", Name: "X Networks", Contact: "AC-1"})
	r.AddOrganisation(Organisation{ID: "ORG-Y", Name: "Y Hosting", Contact: "AC-1"}) // shared contact
	r.AddOrganisation(Organisation{ID: "ORG-Z", Name: "Z Transit", Contact: "AC-9"})
	r.AddAutNum(AutNum{
		ASN: 65001, OrgID: "ORG-X", Contact: "AC-1",
		Imports: []bgp.ASN{65010}, Exports: []bgp.ASN{65010},
	})
	r.AddAutNum(AutNum{ASN: 65002, OrgID: "ORG-X"})
	r.AddAutNum(AutNum{ASN: 65003, OrgID: "ORG-Y"})
	r.AddAutNum(AutNum{ASN: 65009, OrgID: "ORG-Z"})
	r.AddAutNum(AutNum{ASN: 65010, OrgID: "ORG-Z"})
	r.AddRoute(Route{Prefix: netx.MustParsePrefix("203.0.113.0/24"), Origin: 65001, OrgID: "ORG-X"})
	return r
}

func TestMissingLinkEvidence(t *testing.T) {
	r := sample()
	cases := []struct {
		a, b bgp.ASN
		kind string
		ok   bool
	}{
		{65001, 65010, "import-export", true}, // policy lines
		{65010, 65001, "import-export", true}, // symmetric query
		{65001, 65002, "same-org", true},
		{65001, 65003, "shared-contact", true}, // ORG-X and ORG-Y share AC-1
		{65002, 65009, "", false},
		{65001, 99999, "", false}, // unknown AS
	}
	for _, c := range cases {
		ev, ok := r.MissingLinkEvidence(c.a, c.b)
		if ok != c.ok {
			t.Errorf("evidence(%s,%s) = %v, want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok && ev.Kind != c.kind {
			t.Errorf("evidence(%s,%s) kind = %s, want %s", c.a, c.b, ev.Kind, c.kind)
		}
	}
}

func TestSaveParseRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := got.AutNum(65001)
	if !ok || a.OrgID != "ORG-X" || len(a.Imports) != 1 || a.Imports[0] != 65010 {
		t.Fatalf("aut-num lost in round trip: %+v %v", a, ok)
	}
	o, ok := got.Organisation("ORG-Y")
	if !ok || o.Contact != "AC-1" {
		t.Fatalf("organisation lost: %+v %v", o, ok)
	}
	routes := got.RoutesByOrigin(65001)
	if len(routes) != 1 || routes[0].Prefix != netx.MustParsePrefix("203.0.113.0/24") {
		t.Fatalf("routes lost: %+v", routes)
	}
	// Evidence still works after round trip.
	if _, ok := got.MissingLinkEvidence(65001, 65003); !ok {
		t.Fatal("shared-contact evidence lost in round trip")
	}
}

func TestParseHandRolledAndComments(t *testing.T) {
	src := `
% RIPE-style comment
# hash comment

aut-num: AS64512
org: ORG-H
import: from AS64513 accept AS-SET-FOO
export: to AS64513 announce AS64512

route: 198.51.100.0/24
origin: AS64512
`
	r, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := r.AutNum(64512)
	if !ok || len(a.Imports) != 1 || a.Imports[0] != 64513 {
		t.Fatalf("parsed aut-num: %+v %v", a, ok)
	}
	if len(r.RoutesByOrigin(64512)) != 1 {
		t.Fatal("route object missing")
	}
}

func TestParseRejectsBadObjects(t *testing.T) {
	if _, err := Parse(strings.NewReader("aut-num: ASxyz\n")); err == nil {
		t.Fatal("bad ASN accepted")
	}
	if _, err := Parse(strings.NewReader("route: not-a-prefix\norigin: AS1\n")); err == nil {
		t.Fatal("bad prefix accepted")
	}
}

func TestFromScenarioHiddenPeers(t *testing.T) {
	s, err := scenario.Build(scenario.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := FromScenario(s)

	// Every announced prefix has a route object.
	for i := 0; i < s.NumASes(); i++ {
		a := s.ASInfo(i)
		if len(a.Announced) > 0 && len(r.RoutesByOrigin(a.ASN)) < len(a.Announced) {
			t.Fatalf("missing route objects for %s", a.ASN)
		}
	}

	// Hidden peerings yield import/export evidence.
	foundHidden := false
	for _, m := range s.Members {
		if m.HiddenPeerAS < 0 {
			continue
		}
		foundHidden = true
		partner := s.ASInfo(m.HiddenPeerAS).ASN
		ev, ok := r.MissingLinkEvidence(m.ASN, partner)
		if !ok || ev.Kind != "import-export" {
			t.Fatalf("hidden peer %s-%s not discoverable: %+v %v", m.ASN, partner, ev, ok)
		}
	}
	if !foundHidden {
		t.Skip("no hidden peers in this scenario")
	}
}

func TestFromScenarioOrgEvidence(t *testing.T) {
	s, err := scenario.Build(scenario.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := FromScenario(s)
	for _, grp := range s.Orgs().MultiASGroups() {
		// Evidence kind may be import-export when the pair also has a
		// registered interconnect; any positive evidence suffices.
		if ev, ok := r.MissingLinkEvidence(grp[0], grp[1]); !ok {
			t.Fatalf("org siblings %s-%s not discoverable: %+v %v", grp[0], grp[1], ev, ok)
		}
		return
	}
	t.Skip("no multi-AS orgs in this scenario")
}
