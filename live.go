package spoofscope

// The live runtime facade: the deployment mode the paper's conclusion
// proposes, wrapping internal/core's epoch-versioned runtime and
// internal/bgp's snapshot feed in the package's public vocabulary. A
// LiveRuntime classifies a continuous flow stream against hot-swappable
// routing state, sheds load deterministically under pressure, and
// checkpoints its aggregate state so a crash mid-run resumes exactly.

import (
	"context"
	"fmt"
	"time"

	"spoofscope/internal/bgp"
	"spoofscope/internal/core"
)

// Live-runtime types, re-exported from internal/core.
type (
	// Epoch identifies one promoted generation of routing state.
	Epoch = core.Epoch
	// LiveVerdict is a Verdict tagged with the producing epoch and a
	// staleness marker.
	LiveVerdict = core.LiveVerdict
	// QueueConfig tunes the bounded ingest queue (capacity, watermarks,
	// shed seed).
	QueueConfig = core.QueueConfig
	// QueueStats is the ingest queue's accounting snapshot.
	QueueStats = core.QueueStats
	// RuntimeStats is the live runtime's health snapshot.
	RuntimeStats = core.RuntimeStats
	// Checkpoint is a crash-safe snapshot of a live run.
	Checkpoint = core.Checkpoint
	// Aggregator accumulates the paper's aggregate analyses in one pass.
	Aggregator = core.Aggregator
)

// ReadCheckpoint loads a checkpoint file written by a LiveRuntime (or
// cmd/classify's -checkpoint flag).
func ReadCheckpoint(path string) (*Checkpoint, error) {
	return core.ReadCheckpointFile(path)
}

// LiveRuntimeConfig assembles a LiveRuntime.
type LiveRuntimeConfig struct {
	// Classifier seeds the first epoch (optional: with nil, classification
	// blocks until the first SwapClassifier / BGP snapshot promotes one).
	Classifier *Classifier
	// Members is the IXP member table, reused when BGP snapshots rebuild
	// the pipeline.
	Members []Member
	// Options tunes every pipeline built for this runtime.
	Options ClassifierOptions
	// Start and Bucket configure the aggregate time series.
	Start  time.Time
	Bucket time.Duration
	// Queue bounds ingest with deterministic watermark shedding.
	Queue QueueConfig
	// CheckpointPath and CheckpointEvery enable periodic crash-safe
	// snapshots (every N processed flows, written atomically).
	CheckpointPath  string
	CheckpointEvery uint64
	// Resume restores a prior run's checkpoint; the flow source must be
	// re-fed from index Resume.Ingested onward.
	Resume *Checkpoint
	// Telemetry, when non-nil, registers the runtime's health metrics with
	// its registry, wires its event journal through the queue, checkpoint,
	// and swap paths, and installs the runtime's /healthz readiness source.
	// One runtime per Telemetry: metric names would collide otherwise.
	Telemetry *Telemetry
}

// LiveRuntime is the continuous classification engine: collectors push
// flows in via Ingest (never blocking — overload sheds deterministically),
// a consumer drains verdicts via Step or Run, and a BGP feed promotes fresh
// routing state between flows via SwapClassifier or ServeBGP.
type LiveRuntime struct {
	rt      *core.Runtime
	members []Member
	opts    ClassifierOptions
	tel     *Telemetry
}

// NewLiveRuntime builds the runtime.
func NewLiveRuntime(cfg LiveRuntimeConfig) (*LiveRuntime, error) {
	var p *core.Pipeline
	if cfg.Classifier != nil {
		p = cfg.Classifier.Pipeline()
	}
	rt, err := core.NewRuntime(core.RuntimeConfig{
		Pipeline: p,
		Start:    cfg.Start, Bucket: cfg.Bucket,
		Queue:           cfg.Queue,
		CheckpointPath:  cfg.CheckpointPath,
		CheckpointEvery: cfg.CheckpointEvery,
		Resume:          cfg.Resume,
		Telemetry:       cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	return &LiveRuntime{rt: rt, members: cfg.Members, opts: cfg.Options, tel: cfg.Telemetry}, nil
}

// Telemetry returns the bundle the runtime was built with (nil if none).
func (lr *LiveRuntime) Telemetry() *Telemetry { return lr.tel }

// Ingest offers one flow; false reports it was shed or the runtime closed.
// Collectors plug in directly: `col.Serve(deadline, func(f Flow) { lr.Ingest(f) })`.
func (lr *LiveRuntime) Ingest(f Flow) bool { return lr.rt.Ingest(f) }

// IngestFunc adapts Ingest to the collector callback signature.
func (lr *LiveRuntime) IngestFunc() func(Flow) { return lr.rt.IngestFunc() }

// IngestBatch offers a decoded message's flows in one call — the zero-copy
// hand-off from the collectors' batch callbacks (ServeBatch, ForEachBatch).
// Flows are queued by value so the caller may reuse the slice immediately;
// parked consumers are woken once per batch instead of per record. It
// returns how many flows were queued (the rest were shed or the runtime is
// closed).
func (lr *LiveRuntime) IngestBatch(flows []Flow) int { return lr.rt.IngestBatch(flows) }

// IngestBatchFunc adapts IngestBatch to the collectors' batch callback
// signature: `col.ServeBatch(lr.IngestBatchFunc())`.
func (lr *LiveRuntime) IngestBatchFunc() func([]Flow) bool { return lr.rt.IngestBatchFunc() }

// IngestWait offers one flow with backpressure: a full queue blocks the
// caller instead of shedding. Use it for replayable sources (file readers)
// where every flow must be classified; live collectors keep using Ingest,
// whose never-block contract bounds their latency. False reports the
// runtime was closed before the flow could be queued.
func (lr *LiveRuntime) IngestWait(f Flow) bool { return lr.rt.IngestWait(f) }

// Step consumes one flow: it blocks until a flow (and a promoted
// classifier) is available and reports false once the runtime is closed
// and drained.
func (lr *LiveRuntime) Step() (Flow, LiveVerdict, bool) { return lr.rt.Step() }

// Run consumes flows until ctx is cancelled or the runtime is closed and
// drained; fn (optional) observes every verdict and may stop the loop.
func (lr *LiveRuntime) Run(ctx context.Context, fn func(Flow, LiveVerdict) bool) error {
	return lr.rt.Run(ctx, fn)
}

// RunParallel consumes flows with `workers` concurrent consumers (default:
// GOMAXPROCS). Workers classify queue batches against one epoch snapshot
// into private aggregates, merging into the canonical aggregate only at
// epoch swaps and idle edges — the hot path takes no shared lock, and a
// drained run's aggregate (and checkpoint bytes) is identical to the
// sequential Run's over the same flows. fn (optional) observes every
// verdict; calls are serialized but arrive in completion order, not arrival
// order. Do not run concurrently with Step, Run, or another RunParallel.
func (lr *LiveRuntime) RunParallel(ctx context.Context, workers int, fn func(Flow, LiveVerdict) bool) error {
	return lr.rt.RunParallel(ctx, workers, fn)
}

// SwapClassifier promotes a rebuilt classifier as the next epoch and clears
// the degraded marker.
func (lr *LiveRuntime) SwapClassifier(c *Classifier) Epoch {
	return lr.rt.Swap(c.Pipeline())
}

// MarkDegraded flags the routing feed as stale; verdicts carry Stale=true
// until the next swap.
func (lr *LiveRuntime) MarkDegraded() { lr.rt.MarkDegraded() }

// Close stops intake; queued flows drain through Step first.
func (lr *LiveRuntime) Close() { lr.rt.Close() }

// Checkpoint forces a snapshot now (the queue must be drained).
func (lr *LiveRuntime) Checkpoint() error { return lr.rt.Checkpoint() }

// Stats snapshots the runtime's health counters.
func (lr *LiveRuntime) Stats() RuntimeStats { return lr.rt.Stats() }

// Aggregator exposes the aggregate state; do not race it with Step.
func (lr *LiveRuntime) Aggregator() *Aggregator { return lr.rt.Aggregator() }

// BGPFeedConfig wires a live route-server session into the runtime.
type BGPFeedConfig struct {
	// Addr is the route server to dial.
	Addr string
	// Session configures the BGP handshake.
	Session bgp.SessionConfig
	// Reconnect tunes supervision (backoff, attempts, context, dialer);
	// Addr and Session above override the corresponding fields.
	Reconnect bgp.ReconnectorConfig
	// MaxEpochs, when > 0, stops the feed after that many promoted
	// snapshots (tests and finite replays; 0 = run until closed).
	MaxEpochs int
}

// ServeBGP runs a supervised BGP feed that rebuilds and promotes the
// classifier on every complete table replay: session flaps mark the runtime
// degraded, each full replay compiles a fresh pipeline off the hot path and
// swaps it in. Blocks until the feed stops; run it in its own goroutine
// alongside Run.
func (lr *LiveRuntime) ServeBGP(cfg BGPFeedConfig) error {
	rcfg := cfg.Reconnect
	rcfg.Addr = cfg.Addr
	rcfg.Session = cfg.Session
	if rcfg.Telemetry == nil {
		rcfg.Telemetry = lr.tel
	}
	epochs := 0
	var rebuildErr error
	feed := bgp.NewFeed(bgp.FeedConfig{
		Reconnector: rcfg,
		OnGap:       func(error) { lr.rt.MarkDegraded() },
		OnSnapshot: func(rib *bgp.RIB) bool {
			// Off the hot path: classification continues on the old epoch
			// (possibly marked stale) while the new pipeline compiles.
			// RebuildAndSwap diffs the snapshot's fingerprint against the
			// current pipeline and reuses the graph/closure/index layers an
			// unchanged topology leaves valid, so steady-state replays
			// promote in a fraction of a cold compile.
			_, _, err := lr.rt.RebuildAndSwap(rib, lr.members, lr.opts.coreOptions())
			if err != nil {
				rebuildErr = fmt.Errorf("spoofscope: rebuilding pipeline: %w", err)
				return false
			}
			epochs++
			return cfg.MaxEpochs <= 0 || epochs < cfg.MaxEpochs
		},
	})
	err := feed.Run()
	if rebuildErr != nil {
		return rebuildErr
	}
	return err
}
