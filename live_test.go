package spoofscope

// Acceptance tests for the degradation-aware live runtime: kill-and-resume
// must reproduce an uninterrupted run's Table 1 tallies byte-for-byte, and
// classification must ride across a BGP flap + rebuild with verdicts tagged
// Stale during the gap and deterministic shed accounting across replays.

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"spoofscope/internal/bgp"
	"spoofscope/internal/faultnet"
	"spoofscope/internal/netx"
)

// TestKillAndResumeByteIdenticalTallies checkpoints a live run mid-trace,
// "kills" the runtime, resumes from the checkpoint file in a fresh runtime
// re-fed from the cursor, and requires the final checkpoint — the full
// aggregate state, Table 1 tallies included — to be byte-identical to an
// uninterrupted run over the same trace.
func TestKillAndResumeByteIdenticalTallies(t *testing.T) {
	sim := newSmallSim(t)
	flows := sim.Flows()
	if len(flows) > 4000 {
		flows = flows[:4000]
	}
	start, _ := sim.Env().Scenario.Window()
	dir := t.TempDir()

	mk := func(name string, resume *Checkpoint) *LiveRuntime {
		rt, err := NewLiveRuntime(LiveRuntimeConfig{
			Classifier: sim.Classifier(),
			Members:    sim.Members(),
			Start:      start, Bucket: time.Hour,
			CheckpointPath: filepath.Join(dir, name),
			Resume:         resume,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	feed := func(rt *LiveRuntime, flows []Flow) {
		for _, f := range flows {
			if !rt.Ingest(f) {
				t.Fatal("flow shed in a lockstep feed")
			}
			rt.Step()
		}
	}
	finalBytes := func(rt *LiveRuntime, name string) []byte {
		if err := rt.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Reference: one uninterrupted run.
	ref := mk("ref.ckpt", nil)
	feed(ref, flows)
	want := finalBytes(ref, "ref.ckpt")

	// Interrupted run: process 40%, checkpoint, abandon the runtime (the
	// crash — nothing after the snapshot survives).
	cut := len(flows) * 2 / 5
	crashed := mk("run.ckpt", nil)
	feed(crashed, flows[:cut])
	if err := crashed.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Resume: read the file back, rebuild routing state, re-feed the
	// source from the cursor.
	cp, err := ReadCheckpoint(filepath.Join(dir, "run.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Ingested != uint64(cut) || cp.Processed != uint64(cut) {
		t.Fatalf("cursor = %d/%d, want %d", cp.Ingested, cp.Processed, cut)
	}
	resumed := mk("run.ckpt", cp)
	feed(resumed, flows[cp.Ingested:])
	got := finalBytes(resumed, "run.ckpt")

	if !bytes.Equal(want, got) {
		t.Fatalf("resumed checkpoint (%d bytes) differs from uninterrupted run's (%d bytes)",
			len(got), len(want))
	}
	if st := resumed.Stats(); st.Processed != uint64(len(flows)) {
		t.Fatalf("resumed processed = %d, want %d", st.Processed, len(flows))
	}
}

// liveFeedReplay runs the full epoch lifecycle against a live route server
// whose first connection dies mid-replay: classify a batch under epoch 1,
// mark the gap when the session flaps, classify a batch through the gap
// (stale), then classify a final batch under the rebuilt epoch 2. The
// ingest schedule pushes each batch through a deliberately tiny queue to
// engage the shed watermark identically on every replay.
type liveReplayResult struct {
	epochs  [3]Epoch // per batch: observed epoch of first verdict
	stale   [3]int   // per batch: stale verdict count
	shed    uint64
	queued  uint64
	flaps   int
	counts  map[Class]int
	highWat int
}

func liveFeedReplay(t *testing.T, sim *Simulation, seed int64) liveReplayResult {
	t.Helper()
	anns := sim.Env().Scenario.Anns
	flows := sim.Flows()
	if len(flows) > 900 {
		flows = flows[:900]
	}
	start, _ := sim.Env().Scenario.Window()

	// Route server: connection 0 resets mid-replay, connection 1 replays
	// the complete table.
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faultnet.WrapListener(inner, func(i int) faultnet.Config {
		if i == 0 {
			return faultnet.Config{Seed: 21, ResetAfterWrites: 40}
		}
		return faultnet.Config{}
	})
	defer ln.Close()
	go serveAnnouncements(ln, anns)

	rt, err := NewLiveRuntime(LiveRuntimeConfig{
		Classifier: sim.Classifier(), // epoch 1: the pre-flap state
		Members:    sim.Members(),
		Start:      start, Bucket: time.Hour,
		Queue: QueueConfig{
			Capacity: 256, HighWatermark: 192, LowWatermark: 128,
			ShedSeed: seed, ShedFraction: 0.5, // seeded coin, not drop-all
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	res := liveReplayResult{counts: map[Class]int{}}

	// batch ingests n flows at once (overrunning the watermark so the
	// deterministic shed policy engages), then drains what was queued —
	// the same arrival/drain interleaving on every replay.
	off := 0
	batch := func(bi, n int) {
		queuedBefore := rt.Stats().Queue.Queued
		for _, f := range flows[off : off+n] {
			rt.Ingest(f)
		}
		off += n
		accepted := rt.Stats().Queue.Queued - queuedBefore
		for i := uint64(0); i < accepted; i++ {
			_, v, ok := rt.Step()
			if !ok {
				t.Fatal("runtime closed mid-batch")
			}
			if i == 0 {
				res.epochs[bi] = v.Epoch
			}
			if v.Stale {
				res.stale[bi]++
			}
			res.counts[v.Class]++
		}
	}

	// Batch 0: healthy epoch 1.
	batch(0, 300)

	// Supervised feed: the flap marks the runtime degraded; one complete
	// replay then promotes epoch 2 and clears the marker. The gap window
	// is made deterministic by holding the snapshot back until batch 1 is
	// classified.
	gapSeen := make(chan struct{})
	holdSwap := make(chan struct{})
	var flaps atomic.Int32
	feed := bgp.NewFeed(bgp.FeedConfig{
		Reconnector: bgp.ReconnectorConfig{
			Addr: ln.Addr().String(),
			Session: bgp.SessionConfig{
				LocalAS: 64999, LocalID: netx.MustParseAddr("198.51.100.2"),
				HoldTime: 5 * time.Second,
			},
			InitialBackoff: 10 * time.Millisecond,
			Seed:           13,
		},
		OnGap: func(error) {
			rt.MarkDegraded()
			if flaps.Add(1) == 1 {
				close(gapSeen)
			}
		},
		OnSnapshot: func(rib *bgp.RIB) bool {
			<-holdSwap // keep the gap open until batch 1 is done
			cls, err := NewClassifierFromRIB(rib, sim.Members(), ClassifierOptions{})
			if err != nil {
				t.Errorf("rebuild: %v", err)
				return false
			}
			rt.SwapClassifier(cls)
			return false // one rebuilt epoch is enough
		},
	})
	feedDone := make(chan error, 1)
	go func() { feedDone <- feed.Run() }()

	// Batch 1: classified during the gap — old state, tagged Stale.
	<-gapSeen
	batch(1, 300)
	close(holdSwap)
	if err := <-feedDone; err != nil {
		t.Fatalf("feed: %v", err)
	}

	// Batch 2: the rebuilt epoch 2, fresh again.
	batch(2, 300)

	st := rt.Stats()
	res.shed = st.Queue.Shed
	res.queued = st.Queue.Queued
	res.flaps = int(flaps.Load())
	res.highWat = st.Queue.HighWatermarkObserved
	return res
}

// TestEpochSwapAcrossFlap: classification proceeds uninterrupted across a
// BGP flap + rebuild; verdicts during the gap are tagged Stale; shed
// accounting is identical across two seeded replays.
func TestEpochSwapAcrossFlap(t *testing.T) {
	sim := newSmallSim(t)

	r1 := liveFeedReplay(t, sim, 99)
	if r1.flaps == 0 {
		t.Fatal("faulted replay produced no flap")
	}
	if r1.epochs[0] != 1 || r1.stale[0] != 0 {
		t.Fatalf("batch 0 = epoch %d, %d stale; want epoch 1, fresh", r1.epochs[0], r1.stale[0])
	}
	// Gap batch: still epoch 1 (classification never stopped), all stale.
	if r1.epochs[1] != 1 || r1.stale[1] == 0 {
		t.Fatalf("batch 1 = epoch %d, %d stale; want epoch 1, stale", r1.epochs[1], r1.stale[1])
	}
	// Post-rebuild batch: epoch 2, fresh.
	if r1.epochs[2] != 2 || r1.stale[2] != 0 {
		t.Fatalf("batch 2 = epoch %d, %d stale; want epoch 2, fresh", r1.epochs[2], r1.stale[2])
	}
	// The 300-flow bursts into a 256-slot queue must have shed past the
	// watermark — and every shed is accounted.
	if r1.shed == 0 {
		t.Fatal("burst schedule shed nothing; watermark never engaged")
	}
	if r1.queued+r1.shed != 900 {
		t.Fatalf("accounting leak: queued %d + shed %d != 900 ingested", r1.queued, r1.shed)
	}
	if r1.highWat < 192 {
		t.Fatalf("high watermark observed %d, want >= 192", r1.highWat)
	}

	// Second seeded replay: identical shed counts and tallies.
	r2 := liveFeedReplay(t, sim, 99)
	if r1.shed != r2.shed || r1.queued != r2.queued {
		t.Fatalf("shed accounting diverged across replays: %d/%d vs %d/%d",
			r1.shed, r1.queued, r2.shed, r2.queued)
	}
	for c, n := range r1.counts {
		if r2.counts[c] != n {
			t.Fatalf("%s tally diverged across replays: %d vs %d", c, n, r2.counts[c])
		}
	}
}
