package spoofscope

// Observability smoke test (run by `make verify`): a live parallel run with
// telemetry enabled must serve valid Prometheus text over HTTP whose
// per-class counters match the Aggregator's final tallies exactly, walk
// /healthz from unready to ok, and journal the lifecycle.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"spoofscope/internal/core"
)

func TestObsSmoke(t *testing.T) {
	sim := newSmallSim(t)
	flows := sim.Flows()
	if len(flows) > 4000 {
		flows = flows[:4000]
	}

	tel := NewTelemetry()
	srv, err := ServeMetrics("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	start, _ := sim.Env().Scenario.Window()
	rt, err := NewLiveRuntime(LiveRuntimeConfig{
		Members: sim.Members(),
		Start:   start, Bucket: time.Hour,
		Queue:     QueueConfig{Capacity: 8192},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Telemetry() != tel {
		t.Fatal("runtime must expose the telemetry it was built with")
	}

	// Before any classifier is promoted, /healthz must refuse readiness at
	// the HTTP level.
	if code, body := httpGet(t, srv.URL()+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz before promotion: code=%d body=%s", code, body)
	}
	rt.SwapClassifier(sim.Classifier())
	if code, body := httpGet(t, srv.URL()+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after promotion: code=%d body=%s", code, body)
	}

	// Drive a 4-worker run while the server is live; scrape mid-run to
	// prove exposition works under concurrent classification.
	done := make(chan error, 1)
	go func() { done <- rt.RunParallel(nil, 4, nil) }()
	go func() {
		for _, f := range flows {
			rt.IngestWait(f)
		}
		rt.Close()
	}()
	if code, _ := httpGet(t, srv.URL()+"/metrics"); code != http.StatusOK {
		t.Fatalf("mid-run scrape: code=%d", code)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Drained: the scrape must now match the canonical aggregate exactly.
	code, text := httpGet(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("final scrape: code=%d", code)
	}
	scraped := parseClassCounters(t, text)
	agg := rt.Aggregator()
	for _, c := range []core.TrafficClass{
		core.TCRegular, core.TCBogon, core.TCUnrouted,
		core.TCInvalidNaive, core.TCInvalidCC, core.TCInvalidFull,
	} {
		got, ok := scraped[c.String()]
		if !ok {
			t.Errorf("class %s missing from scrape", c)
			continue
		}
		if want := agg.Total[c].Flows; got != want {
			t.Errorf("class %s: scraped %d, aggregator %d", c, got, want)
		}
	}
	for _, want := range []string{
		"spoofscope_runtime_epoch 1",
		fmt.Sprintf("spoofscope_runtime_processed_total %d", len(flows)),
		fmt.Sprintf("spoofscope_queue_ingested_total %d", len(flows)),
		"spoofscope_queue_depth 0",
		"# TYPE spoofscope_classify_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// The journal recorded the promotion.
	var sawSwap bool
	for _, e := range tel.Journal.Events() {
		if e.Kind == "epoch-swap" {
			sawSwap = true
		}
	}
	if !sawSwap {
		t.Fatal("journal missing the epoch-swap event")
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// parseClassCounters extracts class -> value from the
// spoofscope_flows_classified_total samples of a Prometheus text scrape,
// validating the basic line shape as it goes.
func parseClassCounters(t *testing.T, text string) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `spoofscope_flows_classified_total{class="`) {
			continue
		}
		rest := strings.TrimPrefix(line, `spoofscope_flows_classified_total{class="`)
		end := strings.Index(rest, `"`)
		if end < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		class := rest[:end]
		fields := strings.Fields(rest[end:])
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		out[class] = v
	}
	return out
}
