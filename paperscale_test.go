package spoofscope

import (
	"testing"

	"spoofscope/internal/experiments"
	"spoofscope/internal/scenario"
)

// TestPaperScaleSmoke builds the full paper-scale environment (≈6.4K ASes,
// 700 members, four weeks of traffic) and checks the headline Table 1
// member-participation numbers against the paper's. ~30s; skipped with
// -short.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build takes ~30s; run without -short")
	}
	opts := experiments.DefaultOptions()
	opts.Scenario = scenario.PaperScaleConfig()
	env, err := experiments.NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(env.Scenario.Members); got != 700 {
		t.Fatalf("members = %d", got)
	}
	if len(env.Flows) < 1_000_000 {
		t.Fatalf("only %d flows at paper scale", len(env.Flows))
	}

	r := experiments.Table1(env)
	row := func(name string) *experiments.Table1Row {
		x := r.Row(name)
		if x == nil {
			t.Fatalf("missing row %s", name)
		}
		return x
	}
	// Member participation at paper scale lands close to the paper's
	// values (bogon 72%, unrouted 52%, invalid FULL 54%).
	if f := row("bogon").MemberFrac; f < 0.60 || f > 0.80 {
		t.Errorf("bogon member fraction = %v (paper 0.72)", f)
	}
	if f := row("unrouted").MemberFrac; f < 0.40 || f > 0.62 {
		t.Errorf("unrouted member fraction = %v (paper 0.52)", f)
	}
	if f := row("invalid-full").MemberFrac; f < 0.45 || f > 0.75 {
		t.Errorf("invalid-full member fraction = %v (paper 0.54)", f)
	}
	// Volume ordering.
	if !(row("invalid-naive").Packets >= row("invalid-cc").Packets &&
		row("invalid-cc").Packets >= row("invalid-full").Packets) {
		t.Error("Table 1 packet ordering violated at paper scale")
	}
	// Bogon/unrouted volumes stay far below invalid's.
	if row("bogon").PacketFrac > 0.05 || row("unrouted").PacketFrac > 0.05 {
		t.Error("bogon/unrouted volumes too large at paper scale")
	}
	// The full-cone inflation artifact exists (some ASes valid for nearly
	// everything).
	f2 := experiments.Figure2(env)
	if f2.FullTableASes == 0 {
		t.Error("no full-table ASes at paper scale")
	}
}
