//go:build !race

package spoofscope

// raceEnabled reports whether the race detector is compiled in; allocation
// assertions skip under -race because its instrumentation allocates.
const raceEnabled = false
