package spoofscope

// End-to-end resilience acceptance: a faultnet schedule kills and corrupts
// the live transports mid-feed, and the supervised BGP session plus the
// hardened IPFIX collector must recover automatically — with the final
// classified-flow tally identical to a run with no faults at all.

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"spoofscope/internal/bgp"
	"spoofscope/internal/cluster"
	"spoofscope/internal/core"
	"spoofscope/internal/faultnet"
	"spoofscope/internal/ipfix"
	"spoofscope/internal/netx"
	"spoofscope/internal/obs"
)

// serveAnnouncements replays the announcement table to every peer that
// connects to ln, closing each session with an orderly CEASE after a
// complete replay.
func serveAnnouncements(ln net.Listener, anns []bgp.Announcement) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			sess, err := bgp.NewSession(conn, bgp.SessionConfig{
				LocalAS: 65000, LocalID: netx.MustParseAddr("198.51.100.1"),
				HoldTime: 10 * time.Second,
			})
			if err != nil {
				return
			}
			defer sess.Close()
			for _, a := range anns {
				if err := sess.Send(&bgp.Update{
					Attrs: bgp.Attributes{
						ASPath:  []bgp.PathSegment{{Type: bgp.SegmentSequence, ASNs: a.Path}},
						NextHop: netx.MustParseAddr("198.51.100.2"),
					},
					NLRI: []netx.Prefix{a.Prefix},
				}); err != nil {
					return
				}
			}
		}(conn)
	}
}

// ribViaLiveFeed streams the announcements through a supervised BGP session.
// serverPlan schedules faults on the route server's accepted connections,
// dialPlan on the collector's outbound ones (both indexed per connection;
// nil = clean). It returns the RIB the collector ends up with plus the
// supervision stats.
func ribViaLiveFeed(t *testing.T, anns []bgp.Announcement, serverPlan, dialPlan func(i int) faultnet.Config) (*bgp.RIB, bgp.ReconnectorStats) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faultnet.WrapListener(inner, serverPlan)
	defer ln.Close()
	go serveAnnouncements(ln, anns)

	rib := bgp.NewRIB()
	dials := 0
	rec := bgp.NewReconnector(bgp.ReconnectorConfig{
		Addr: ln.Addr().String(),
		Session: bgp.SessionConfig{
			LocalAS: 64999, LocalID: netx.MustParseAddr("198.51.100.2"),
			HoldTime: 2 * time.Second,
		},
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		Seed:           13,
		Dial: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			i := dials
			dials++
			if dialPlan == nil {
				return conn, nil
			}
			return faultnet.Wrap(conn, dialPlan(i)), nil
		},
		OnEstablish: func(*bgp.Session) error {
			rib = bgp.NewRIB() // the peer replays from scratch
			return nil
		},
	})
	defer rec.Close()
	for {
		u, err := rec.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		rib.ApplyUpdate(u)
	}
	return rib, rec.Stats()
}

func classTally(cls *Classifier, flows []Flow) map[Class]int {
	counts := map[Class]int{}
	for _, f := range flows {
		counts[cls.Classify(f).Class]++
	}
	return counts
}

func TestResilientBGPFeedMatchesNoFaultRun(t *testing.T) {
	sim := newSmallSim(t)
	anns := sim.Env().Scenario.Anns
	flows := sim.Flows()

	cleanRIB, cleanStats := ribViaLiveFeed(t, anns, nil, nil)
	if cleanStats.Flaps != 0 || cleanStats.Dials != 1 {
		t.Fatalf("clean run stats = %+v", cleanStats)
	}

	// Fault schedule: the server resets connection 0 mid-replay; the
	// collector's second dial stalls right after the handshake, so the
	// negotiated 2s hold timer must fire (Recv never hangs); the third
	// connection runs clean end to end.
	serverPlan := func(i int) faultnet.Config {
		if i == 0 {
			return faultnet.Config{Seed: 21, ResetAfterWrites: 30}
		}
		return faultnet.Config{}
	}
	dialPlan := func(i int) faultnet.Config {
		if i == 1 {
			return faultnet.Config{Seed: 22, StallAfterReads: 4}
		}
		return faultnet.Config{}
	}
	start := time.Now()
	faultRIB, faultStats := ribViaLiveFeed(t, anns, serverPlan, dialPlan)
	elapsed := time.Since(start)
	if faultStats.Flaps != 2 {
		t.Fatalf("fault run flaps = %+v", faultStats)
	}
	if faultStats.Dials != 3 {
		t.Fatalf("fault run dials = %+v", faultStats)
	}
	// The stalled session must have died on the 2s hold timer, not hung.
	if elapsed > 15*time.Second {
		t.Fatalf("fault run took %v — the stalled Recv hung past the hold timer", elapsed)
	}

	if cleanRIB.NumPrefixes() != faultRIB.NumPrefixes() {
		t.Fatalf("prefixes: clean %d, faulted %d", cleanRIB.NumPrefixes(), faultRIB.NumPrefixes())
	}
	members := sim.Members()
	cleanCls, err := NewClassifierFromRIB(cleanRIB, members, ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faultCls, err := NewClassifierFromRIB(faultRIB, members, ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, faulted := classTally(cleanCls, flows), classTally(faultCls, flows)
	for _, c := range []Class{ClassValid, ClassBogon, ClassUnrouted, ClassInvalid} {
		if clean[c] != faulted[c] {
			t.Errorf("%s: clean %d, faulted %d", c, clean[c], faulted[c])
		}
	}
}

// TestResilientIPFIXFeedMatchesNoFaultRun streams flows to the hardened TCP
// collector through a transport that is reset mid-stream and fed one
// corrupt-but-framed message; the exporter re-dials and re-sends, and the
// classified tally of the collected flows must match classifying the same
// flows directly.
func TestResilientIPFIXFeedMatchesNoFaultRun(t *testing.T) {
	sim := newSmallSim(t)
	cls := sim.Classifier()
	flows := append([]Flow(nil), sim.Flows()...)
	if len(flows) > 2000 {
		flows = flows[:2000]
	}
	// Stamp each flow with a unique start time so duplicates from re-sent
	// batches can be de-duplicated; Start does not affect classification.
	epoch := time.Unix(1486252800, 0).UTC()
	for i := range flows {
		flows[i].Start = epoch.Add(time.Duration(i) * time.Millisecond)
	}

	col, err := ipfix.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col.IdleTimeout = 5 * time.Second

	var mu sync.Mutex
	collected := map[int64]Flow{}
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- col.Serve(func(f Flow) bool {
			mu.Lock()
			collected[f.Start.UnixMilli()] = f
			mu.Unlock()
			return true
		})
	}()

	// A corrupt-but-framed IPFIX message: correct length field, version 0.
	bad := make([]byte, 20)
	binary.BigEndian.PutUint16(bad[2:], uint16(len(bad)))

	// Exporter with retry: connection 0 resets mid-stream (faultnet), later
	// connections run clean; after a transport error the current batch and
	// everything after it are re-sent on a fresh connection.
	dials := 0
	dial := func() (*ipfix.TCPExporter, net.Conn, error) {
		raw, err := net.Dial("tcp", col.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		conn := net.Conn(raw)
		if dials == 0 {
			conn = faultnet.Wrap(raw, faultnet.Config{Seed: 31, ResetAfterWrites: 5})
		}
		dials++
		return ipfix.NewTCPExporter(conn, 9), conn, nil
	}
	exp, conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	const batch = 100
	for off := 0; off < len(flows); off += batch {
		end := off + batch
		if end > len(flows) {
			end = len(flows)
		}
		if off == 3*batch {
			// Inject garbage between two healthy batches: the collector
			// must count it and keep the stream alive.
			if _, err := conn.Write(bad); err != nil {
				t.Fatal(err)
			}
		}
		if err := exp.Export(epoch, flows[off:end]); err != nil {
			exp, conn, err = dial()
			if err != nil {
				t.Fatal(err)
			}
			off -= batch // re-send the failed batch on the new connection
		}
	}
	exp.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(collected)
		mu.Unlock()
		if n >= len(flows) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	col.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	st := col.Stats()
	if dials < 2 || st.Connections != dials {
		t.Fatalf("dials = %d, connections = %d", dials, st.Connections)
	}
	if st.Disconnects < 1 {
		t.Fatalf("reset not recorded: %+v", st)
	}
	if st.Malformed < 1 {
		t.Fatalf("corrupt framed message not counted: %+v", st)
	}

	mu.Lock()
	got := make([]Flow, 0, len(collected))
	for _, f := range collected {
		got = append(got, f)
	}
	mu.Unlock()
	if len(got) != len(flows) {
		t.Fatalf("collected %d distinct flows, want %d", len(got), len(flows))
	}
	want, have := classTally(cls, flows), classTally(cls, got)
	for _, c := range []Class{ClassValid, ClassBogon, ClassUnrouted, ClassInvalid} {
		if want[c] != have[c] {
			t.Errorf("%s: direct %d, via faulted feed %d", c, want[c], have[c])
		}
	}
}

// TestResilientClusterMatchesSingleProcess is the cluster-mode acceptance
// run over the simulated IXP: flows shard across two workers, one worker
// is killed mid-feed, the coordinator hands its shards to the survivor
// from the last durable checkpoint, and the merged cluster checkpoint must
// be byte-identical to a fault-free single-process run over the same
// traffic — the tally cannot merely be close, it must be exact.
func TestResilientClusterMatchesSingleProcess(t *testing.T) {
	sim := newSmallSim(t)
	anns := sim.Env().Scenario.Anns
	members := sim.Members()
	flows := sim.Flows()
	if len(flows) > 4000 {
		flows = flows[:4000]
	}
	rib := bgp.NewRIB()
	for _, a := range anns {
		rib.AddAnnouncement(a.Prefix, a.Path)
	}
	start := time.Unix(1486252800, 0).UTC()

	// Fault-free single-process reference.
	p, _, err := core.RebuildPipeline(nil, rib, members, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(core.RuntimeConfig{Pipeline: p, Start: start, Bucket: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan struct{})
	go func() { defer close(drained); rt.RunParallel(context.Background(), 0, nil) }()
	for _, f := range flows {
		if !rt.IngestWait(f) {
			t.Fatal("reference runtime closed mid-feed")
		}
	}
	var want bytes.Buffer
	for deadline := time.Now().Add(10 * time.Second); ; {
		want.Reset()
		if err := rt.WriteCheckpoint(&want); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("reference never quiescent: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	rt.Close()
	<-drained

	// Cluster run: two workers over in-process pipes, one killed mid-feed.
	tel := obs.NewTelemetry()
	coord, err := cluster.NewCoordinator(cluster.Config{
		Shards: 4, Members: members, Start: start, Bucket: time.Hour,
		HeartbeatInterval: 20 * time.Millisecond, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	startWorker := func(name string, seed int64) (cancel context.CancelFunc, done chan struct{}) {
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Name: name,
			Dial: func() (net.Conn, error) {
				coordSide, workerSide := net.Pipe()
				coord.AddConn(coordSide)
				return workerSide, nil
			},
			HeartbeatInterval: 20 * time.Millisecond,
			InitialBackoff:    5 * time.Millisecond,
			Seed:              seed,
			Telemetry:         tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done = make(chan struct{})
		go func() { defer close(done); w.Run(ctx) }()
		deadline := time.Now().Add(10 * time.Second)
		for coordStats := coord.Stats(); ; coordStats = coord.Stats() {
			if coordStats.Workers >= 1 && hasJoinEvent(tel, name) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never joined", name)
			}
			time.Sleep(time.Millisecond)
		}
		return cancel, done
	}
	cancelA, doneA := startWorker("wa", 1)
	defer cancelA()
	cancelB, doneB := startWorker("wb", 2)
	defer cancelB()
	if _, err := coord.DistributeEpoch(rib); err != nil {
		t.Fatal(err)
	}

	half := len(flows) / 2
	for _, f := range flows[:half] {
		coord.Ingest(f)
	}
	// A graceful move parks the shard until the old owner's drain report
	// lands, so B acquires its shards asynchronously after joining. Wait
	// for B to own at least one before the kill, or there is no failover
	// to exercise.
	ownDeadline := time.Now().Add(10 * time.Second)
	for {
		owned := 0
		for _, w := range coord.FleetStatus().Workers {
			if w.Name == "wb" {
				owned = w.Shards
			}
		}
		if owned > 0 {
			break
		}
		if time.Now().After(ownDeadline) {
			t.Fatalf("worker B never acquired a shard: %+v", coord.FleetStatus())
		}
		time.Sleep(time.Millisecond)
	}
	// Kill worker B outright mid-run: its runtimes die with it, and the
	// coordinator must resume its shards on worker A from the last
	// durable report plus the replay buffer.
	cancelB()
	select {
	case <-doneB:
	case <-time.After(10 * time.Second):
		t.Fatal("killed worker did not exit")
	}
	for _, f := range flows[half:] {
		coord.Ingest(f)
	}

	cctx, ccancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer ccancel()
	cp, err := coord.Checkpoint(cctx)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := core.EncodeCheckpoint(&got, cp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("cluster checkpoint (%d bytes) differs from single-process run (%d bytes)",
			got.Len(), want.Len())
	}
	st := coord.Stats()
	if st.Handoffs == 0 {
		t.Fatalf("worker kill produced no handoffs: %+v", st)
	}
	if st.ReplayFlows != 0 || st.Orphaned != 0 {
		t.Fatalf("cursor invariant violated after checkpoint: %+v", st)
	}
	if st.FlowsRouted != uint64(len(flows)) {
		t.Fatalf("routed %d flows, fed %d", st.FlowsRouted, len(flows))
	}

	// The classified tallies implied by the checkpoints match by
	// construction (the encodings are byte-identical); sanity-check the
	// merged aggregate actually classified everything.
	if total := cp.Agg.GrandTotal; total.Packets == 0 {
		t.Fatal("merged aggregate is empty")
	}
	cancelA()
	select {
	case <-doneA:
	case <-time.After(10 * time.Second):
		t.Fatal("surviving worker did not stop")
	}
}

func hasJoinEvent(tel *obs.Telemetry, name string) bool {
	for _, e := range tel.Journal.Events() {
		if e.Kind == obs.EventWorkerJoin && strings.HasPrefix(e.Msg, name+" ") {
			return true
		}
	}
	return false
}
