// Package spoofscope is a from-scratch reproduction of "Detection,
// Classification, and Analysis of Inter-Domain Traffic with Spoofed Source
// IP Addresses" (Lichtblau et al., ACM IMC 2017).
//
// It provides a passive spoofing classifier for inter-domain traffic: each
// flow's source address is matched, strictly sequentially, against the
// bogon list, the routed address space, and the sending member's valid
// address space as inferred from BGP data under three approaches (Naive,
// Customer Cone, Full Cone), yielding the mutually exclusive classes
// Bogon / Unrouted / Invalid / Valid.
//
// The package is a facade over the implementation in internal/: it
// re-exports the classifier, the flow and BGP substrates, and a full
// synthetic-IXP simulation used to regenerate every table and figure of
// the paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	sim, _ := spoofscope.NewSimulation(spoofscope.SimulationSizeSmall, 1)
//	verdict := sim.Classifier().Classify(flow)
//	if verdict.Class == spoofscope.ClassInvalid { ... }
//
// To classify real data instead, feed MRT routing data and IPFIX flows:
//
//	cls, _ := spoofscope.NewClassifierFromMRT(mrtReader, members, spoofscope.ClassifierOptions{})
//	cls.ClassifyIPFIX(flowReader, func(f spoofscope.Flow, v spoofscope.Verdict) bool { ...; return true })
package spoofscope

import (
	"fmt"
	"io"

	"spoofscope/internal/attacks"
	"spoofscope/internal/bgp"
	"spoofscope/internal/bogon"
	"spoofscope/internal/core"
	"spoofscope/internal/experiments"
	"spoofscope/internal/ipfix"
	"spoofscope/internal/netx"
	"spoofscope/internal/scenario"
)

// Re-exported core types. Aliases keep the public API in one import path
// while the implementation lives in internal packages.
type (
	// Flow is one sampled flow record (IPFIX-derived).
	Flow = ipfix.Flow
	// Verdict is a flow's classification.
	Verdict = core.Verdict
	// Class is the AS-agnostic classification outcome.
	Class = core.Class
	// Approach selects a valid-space inference method.
	Approach = core.Approach
	// Member identifies an IXP member (ASN + switch port).
	Member = core.MemberInfo
	// ASN is an autonomous system number.
	ASN = bgp.ASN
	// Addr is an IPv4 address.
	Addr = netx.Addr
	// Prefix is an IPv4 CIDR prefix.
	Prefix = netx.Prefix
)

// Live-ingestion health types. The deployment surfaces (bgp.Session /
// bgp.Reconnector, the IPFIX collectors) expose these counters so an
// operator can tell a quiet feed from a degraded one: negotiated hold time
// and message counts per BGP session, flap/retry totals per supervised
// session, and drop/malformed/disconnect tallies per collector.
type (
	// SessionStats snapshots one BGP session's negotiated hold time and
	// message counters (bgp.Session.Stats).
	SessionStats = bgp.SessionStats
	// ReconnectorStats snapshots a supervised BGP session's state and
	// flap/retry counters (bgp.Reconnector.Stats).
	ReconnectorStats = bgp.ReconnectorStats
	// CollectorStats snapshots an IPFIX collector's transport health
	// (ipfix.TCPCollector.Stats / ipfix.UDPCollector.Stats).
	CollectorStats = ipfix.CollectorStats
)

// Classification classes.
const (
	ClassValid    = core.ClassValid
	ClassBogon    = core.ClassBogon
	ClassUnrouted = core.ClassUnrouted
	ClassInvalid  = core.ClassInvalid
)

// Inference approaches.
const (
	ApproachNaive = core.ApproachNaive
	ApproachCC    = core.ApproachCC
	ApproachFull  = core.ApproachFull
)

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return netx.ParseAddr(s) }

// ParsePrefix parses CIDR notation (host bits are zeroed).
func ParsePrefix(s string) (Prefix, error) { return netx.ParsePrefix(s) }

// ClassifierOptions tunes classifier construction.
type ClassifierOptions struct {
	// Orgs lists multi-AS organisation groups to merge into the cones.
	Orgs [][]ASN
	// RouterAddrs, when non-empty, tags stray router-sourced traffic.
	RouterAddrs []Addr
	// DisableOrgMerge computes cones without organisation merging.
	DisableOrgMerge bool
	// BuildWorkers bounds the compilation worker pool (closure propagation,
	// index construction, per-member tables). <= 0 means GOMAXPROCS; 1 runs
	// the sequential build. The compiled classifier is identical either way.
	BuildWorkers int
}

// Classifier is the compiled passive spoofing detector.
type Classifier struct {
	pipeline *core.Pipeline
}

// NewClassifierFromMRT builds a classifier from an MRT stream (TABLE_DUMP_V2
// and/or BGP4MP records) and the IXP member table.
func NewClassifierFromMRT(mrt io.Reader, members []Member, opts ClassifierOptions) (*Classifier, error) {
	rib := bgp.NewRIB()
	if err := rib.LoadMRT(mrt); err != nil {
		return nil, fmt.Errorf("spoofscope: loading MRT: %w", err)
	}
	return NewClassifierFromRIB(rib, members, opts)
}

// NewClassifierFromRIB builds a classifier from an already-digested RIB.
func NewClassifierFromRIB(rib *bgp.RIB, members []Member, opts ClassifierOptions) (*Classifier, error) {
	p, err := core.NewPipeline(rib, members, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Classifier{pipeline: p}, nil
}

// coreOptions lowers the facade options into the internal pipeline options.
func (opts ClassifierOptions) coreOptions() core.Options {
	var routers core.RouterSet
	if len(opts.RouterAddrs) > 0 {
		set := make(addrSet, len(opts.RouterAddrs))
		for _, a := range opts.RouterAddrs {
			set[a] = struct{}{}
		}
		routers = set
	}
	return core.Options{
		Orgs:            opts.Orgs,
		Routers:         routers,
		DisableOrgMerge: opts.DisableOrgMerge,
		BuildWorkers:    opts.BuildWorkers,
	}
}

type addrSet map[netx.Addr]struct{}

func (s addrSet) Contains(a netx.Addr) bool {
	_, ok := s[a]
	return ok
}

// Classify runs the Figure-3 pipeline on one flow. Safe for concurrent use.
func (c *Classifier) Classify(f Flow) Verdict { return c.pipeline.Classify(f) }

// AllowSource whitelists an address range for a member (the paper's §4.4
// correction after confirming a missing AS relationship out of band).
// Not safe to call concurrently with Classify.
func (c *Classifier) AllowSource(member ASN, p Prefix) error {
	return c.pipeline.AllowSource(member, p)
}

// ClassifyIPFIX streams an IPFIX file (concatenated messages) through the
// classifier. fn returning false stops early.
func (c *Classifier) ClassifyIPFIX(r io.Reader, fn func(Flow, Verdict) bool) error {
	fr := ipfix.NewFileReader(r)
	return fr.ForEach(func(f ipfix.Flow) bool {
		return fn(f, c.pipeline.Classify(f))
	})
}

// Pipeline exposes the underlying pipeline for advanced analyses
// (aggregation, cone inspection).
func (c *Classifier) Pipeline() *core.Pipeline { return c.pipeline }

// FilterList generates the ingress ACL (minimal CIDR whitelist) for
// traffic arriving from a member under the chosen inference approach —
// the automated filter-list construction the paper's introduction calls
// for. See core.Pipeline.FilterList for caveats per approach.
func (c *Classifier) FilterList(member ASN, a Approach) ([]Prefix, error) {
	return c.pipeline.FilterList(member, a)
}

// Attack-event types (see internal/attacks).
type (
	// FloodEvent is a detected random-spoofing flood against one victim.
	FloodEvent = attacks.FloodEvent
	// AmplificationCampaign is a detected NTP reflection campaign.
	AmplificationCampaign = attacks.AmplificationCampaign
)

// DetectAttacks classifies flows and extracts the §7 attack events:
// random-spoofing floods and NTP amplification campaigns, largest first.
func (c *Classifier) DetectAttacks(flows []Flow) ([]FloodEvent, []AmplificationCampaign) {
	d := attacks.NewDetector(attacks.Config{})
	for _, f := range flows {
		d.Add(f, c.pipeline.Classify(f))
	}
	return d.Floods(), d.Campaigns()
}

// BogonList returns the built-in bogon reference (14 aggregated prefixes).
func BogonList() []Prefix {
	entries := bogon.Reference()
	out := make([]Prefix, len(entries))
	for i, e := range entries {
		out[i] = e.Prefix
	}
	return out
}

// SimulationSize selects a synthetic-IXP scale.
type SimulationSize int

// Simulation scales.
const (
	// SimulationSizeSmall: ~250 ASes, 60 members, one day. Unit tests.
	SimulationSizeSmall SimulationSize = iota
	// SimulationSizeDefault: ~1.5K ASes, 220 members, one week.
	SimulationSizeDefault
	// SimulationSizePaper: ~6.4K ASes, 700 members, four weeks.
	SimulationSizePaper
)

// Simulation bundles a synthetic IXP environment: topology, BGP view,
// labeled traffic, and a compiled classifier. It powers the examples, the
// benchmarks, and the experiment harness.
type Simulation struct {
	env *experiments.Env
}

// NewSimulation builds a deterministic synthetic environment.
func NewSimulation(size SimulationSize, seed int64) (*Simulation, error) {
	opts := experiments.DefaultOptions()
	switch size {
	case SimulationSizeSmall:
		opts = experiments.SmallOptions()
	case SimulationSizePaper:
		opts.Scenario = scenario.PaperScaleConfig()
	}
	opts.Scenario.Seed = seed
	env, err := experiments.NewEnv(opts)
	if err != nil {
		return nil, err
	}
	return &Simulation{env: env}, nil
}

// Classifier returns the simulation's compiled classifier.
func (s *Simulation) Classifier() *Classifier {
	return &Classifier{pipeline: s.env.Pipeline}
}

// Flows returns the simulation's sampled traffic (classifier input).
func (s *Simulation) Flows() []Flow { return s.env.Flows }

// Members returns the IXP member table.
func (s *Simulation) Members() []Member {
	out := make([]Member, 0, len(s.env.Scenario.Members))
	for _, m := range s.env.Scenario.Members {
		out = append(out, Member{ASN: m.ASN, Port: m.Port})
	}
	return out
}

// GroundTruthSpoofed reports whether flow i was generated as intentionally
// spoofed traffic — evaluation only; the classifier never sees labels.
func (s *Simulation) GroundTruthSpoofed(i int) bool {
	return s.env.Labels[i].Spoofed()
}

// Env exposes the full experiment environment (drivers in
// internal/experiments consume it).
func (s *Simulation) Env() *experiments.Env { return s.env }

// RunExperiments renders every table and figure of the paper into w.
func (s *Simulation) RunExperiments(w io.Writer) error {
	return experiments.RunAll(s.env, w)
}

// GenerateTraffic writes the simulation's flows as an IPFIX stream —
// useful for feeding the cmd/classify tool or external collectors.
func (s *Simulation) GenerateTraffic(w io.Writer) error {
	fw := ipfix.NewFileWriter(w, 1)
	start, _ := s.env.Scenario.Window()
	if err := fw.Write(start, s.env.Flows); err != nil {
		return err
	}
	return fw.Flush()
}

// WriteMRT exports the simulation's BGP view as an MRT stream.
func (s *Simulation) WriteMRT(w io.Writer) error {
	return s.env.Scenario.WriteMRT(w)
}

// Labels exposes the ground-truth label names per flow (evaluation only).
func (s *Simulation) Labels() []string {
	out := make([]string, len(s.env.Labels))
	for i, l := range s.env.Labels {
		out[i] = l.String()
	}
	return out
}
