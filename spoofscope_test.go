package spoofscope

import (
	"bytes"
	"testing"
)

func newSmallSim(t *testing.T) *Simulation {
	t.Helper()
	sim, err := NewSimulation(SimulationSizeSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestSimulationClassifies(t *testing.T) {
	sim := newSmallSim(t)
	cls := sim.Classifier()
	counts := map[Class]int{}
	for _, f := range sim.Flows() {
		counts[cls.Classify(f).Class]++
	}
	for _, c := range []Class{ClassValid, ClassBogon, ClassUnrouted, ClassInvalid} {
		if counts[c] == 0 {
			t.Errorf("class %v never produced", c)
		}
	}
	if counts[ClassValid] < len(sim.Flows())/2 {
		t.Error("valid traffic does not dominate")
	}
}

func TestMRTAndIPFIXRoundTripThroughPublicAPI(t *testing.T) {
	sim := newSmallSim(t)

	var mrt, flows bytes.Buffer
	if err := sim.WriteMRT(&mrt); err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateTraffic(&flows); err != nil {
		t.Fatal(err)
	}

	cls, err := NewClassifierFromMRT(&mrt, sim.Members(), ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := cls.ClassifyIPFIX(&flows, func(f Flow, v Verdict) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(sim.Flows()) {
		t.Fatalf("classified %d of %d flows", n, len(sim.Flows()))
	}
}

func TestGroundTruthAccessors(t *testing.T) {
	sim := newSmallSim(t)
	labels := sim.Labels()
	if len(labels) != len(sim.Flows()) {
		t.Fatal("labels/flows length mismatch")
	}
	spoofed := 0
	for i := range labels {
		if sim.GroundTruthSpoofed(i) {
			spoofed++
		}
	}
	if spoofed == 0 || spoofed > len(labels)/2 {
		t.Fatalf("spoofed ground truth = %d of %d", spoofed, len(labels))
	}
}

func TestDetectionQualityAgainstGroundTruth(t *testing.T) {
	sim := newSmallSim(t)
	cls := sim.Classifier()
	labels := sim.Labels()
	var tp, fn, fp, tn int
	for i, f := range sim.Flows() {
		v := cls.Classify(f)
		flagged := v.Class == ClassBogon || v.Class == ClassUnrouted ||
			v.InvalidFor(ApproachFull)
		switch {
		case sim.GroundTruthSpoofed(i) && flagged:
			tp++
		case sim.GroundTruthSpoofed(i) && !flagged:
			fn++
		default:
			// Restrict the false-positive rate to genuinely legitimate
			// traffic. Misconfiguration (bogon/unrouted leaks) and stray
			// router traffic SHOULD be flagged, and hidden-peer traffic is
			// the designed §4.4 false positive resolved via WHOIS.
			switch labels[i] {
			case "regular", "ntp-response":
				if flagged {
					fp++
				} else {
					tn++
				}
			}
		}
	}
	recall := float64(tp) / float64(tp+fn)
	// The Full Cone is deliberately conservative: the paper acknowledges
	// that "significant portions of spoofed traffic remain undetected"
	// because ~transit-scale members are valid sources for most of the
	// routed space. Spoofed traffic entering via big members escapes.
	if recall < 0.78 {
		t.Errorf("spoofed-traffic recall = %.3f (tp=%d fn=%d)", recall, tp, fn)
	}
	fpRate := float64(fp) / float64(fp+tn)
	if fpRate > 0.04 {
		t.Errorf("legitimate-traffic flag rate = %.3f (fp=%d tn=%d)", fpRate, fp, tn)
	}
}

func TestAllowSourceThroughFacade(t *testing.T) {
	sim := newSmallSim(t)
	cls := sim.Classifier()
	members := sim.Members()
	p, err := ParsePrefix("203.0.113.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.AllowSource(members[0].ASN, p); err != nil {
		t.Fatal(err)
	}
	if err := cls.AllowSource(9999999, p); err == nil {
		t.Fatal("unknown member accepted")
	}
}

func TestFilterListFacade(t *testing.T) {
	sim := newSmallSim(t)
	cls := sim.Classifier()
	members := sim.Members()
	acl, err := cls.FilterList(members[0].ASN, ApproachFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(acl) == 0 {
		t.Fatal("empty ACL")
	}
	// The ACL admits exactly the member's FULL-valid routed sources: every
	// flow the classifier calls valid from this member has an in-ACL
	// source (ACL semantics for routed traffic).
	set := map[Prefix]bool{}
	for _, p := range acl {
		set[p] = true
	}
	checked := 0
	for _, f := range sim.Flows() {
		if f.Ingress != members[0].Port || checked > 500 {
			continue
		}
		v := cls.Classify(f)
		if v.Class != ClassValid {
			continue
		}
		checked++
		covered := false
		for _, p := range acl {
			if p.Contains(f.SrcAddr) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("valid source %v outside the ACL", f.SrcAddr)
		}
	}
	if checked == 0 {
		t.Skip("member sent no valid traffic")
	}
}

func TestDetectAttacksFacade(t *testing.T) {
	sim := newSmallSim(t)
	floods, campaigns := sim.Classifier().DetectAttacks(sim.Flows())
	if len(floods) == 0 {
		t.Fatal("no floods detected")
	}
	if len(campaigns) == 0 {
		t.Fatal("no campaigns detected")
	}
	// Largest-first ordering.
	for i := 1; i < len(floods); i++ {
		if floods[i-1].Packets < floods[i].Packets {
			t.Fatal("floods not sorted")
		}
	}
	if campaigns[0].AmplificationRatio < 2 {
		t.Errorf("top campaign amplification = %v", campaigns[0].AmplificationRatio)
	}
}

func TestBogonList(t *testing.T) {
	l := BogonList()
	if len(l) != 14 {
		t.Fatalf("bogon list = %d entries", len(l))
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseAddr("192.0.2.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAddr("not-an-ip"); err == nil {
		t.Fatal("bad address accepted")
	}
	if _, err := ParsePrefix("10.0.0.0/8"); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentsSmoke(t *testing.T) {
	sim := newSmallSim(t)
	var buf bytes.Buffer
	if err := sim.RunExperiments(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Fatalf("experiment report suspiciously short: %d bytes", buf.Len())
	}
}
