package spoofscope

// Telemetry facade: re-exports internal/obs in the package's public
// vocabulary so deployments can scrape a live runtime without importing
// internal packages. One Telemetry bundle serves a whole process — the
// runtime, its BGP feed, and its collectors all register into the same
// registry and journal.

import "spoofscope/internal/obs"

// Telemetry types, re-exported from internal/obs.
type (
	// Telemetry bundles a metric registry, an event journal, and a health
	// source; pass one to LiveRuntimeConfig.Telemetry.
	Telemetry = obs.Telemetry
	// MetricsServer is the embedded HTTP server exposing /metrics,
	// /healthz, /events, and /debug/pprof.
	MetricsServer = obs.Server
	// JournalEvent is one entry of the bounded structured event journal.
	JournalEvent = obs.Event
	// Health is the /healthz verdict: readiness plus a status string.
	Health = obs.Health
)

// NewTelemetry builds an empty telemetry bundle.
func NewTelemetry() *Telemetry { return obs.NewTelemetry() }

// ServeMetrics binds addr (host:port; port 0 for ephemeral) and serves the
// telemetry endpoints in a background goroutine until the returned server
// is closed.
func ServeMetrics(addr string, t *Telemetry) (*MetricsServer, error) {
	return obs.Serve(addr, t)
}
